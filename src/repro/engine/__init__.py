"""Lazy expression-DAG execution engine for nonblocking mode (§III, §V).

Deferred methods become :mod:`~repro.engine.dag` nodes; forcing calls
run :func:`repro.engine.scheduler.force`, which plans kernel fusion
(:mod:`~repro.engine.fusion`) and executes the needed subgraph,
concurrently where dependencies allow.  :data:`repro.engine.stats.STATS`
records what the optimizer did.

Only :mod:`~repro.engine.stats` is imported eagerly: the core layer
imports this package, and the heavier engine modules import the core —
submodules are loaded on first use to keep the import graph acyclic.
"""

from .stats import STATS, EngineStats

__all__ = ["STATS", "EngineStats"]

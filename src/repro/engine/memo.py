"""Cross-forcing result cache (§III optimization latitude).

The planner's CSE pass hash-conses duplicates *within* one forcing;
this module extends the same idea across API calls: a bounded LRU memo
of ``memo key → committed carrier`` per :class:`~repro.core.context.
Context`, where the key (:func:`repro.engine.dag.memo_key`) identifies
a pure built-in computation over *versioned* input handles.  When a
later sequence re-submits ``C = A ⊕.⊗ A``, the CSE pass finds the
committed product here and the scheduler republishes it through the
transactional commit gate (:mod:`repro.engine.txn`) instead of
re-running the kernel — the Julia-GraphBLAS "reuse materialized results
across calls" win.

Soundness rests on three invariants:

* **Versioned keys** — every captured input carries ``(uid, version)``;
  uids come from a monotonic counter (never reused, unlike ``id()``)
  and versions advance on every write, so a key can never alias a
  different committed value.
* **Eager invalidation** — every write to a handle calls
  :func:`invalidate_handle`, dropping all entries that *depend* on
  that uid in every live memo.  ``GrB_free`` calls
  :func:`release_handle`, which additionally drops entries whose
  cached carrier was committed *to* that handle (tracked separately —
  the output is not a value dependency, or re-submitting
  ``C = A ⊕.⊗ A`` would invalidate its own hit), so freeing the object
  whose result was cached releases the carrier (the gc/weakref
  property ``GrB_free`` demands).
* **Scoped stores** — the memo lives on the Context, so a hit can never
  cross a context (and hence never a mode) boundary; descriptor
  settings that change the computed value (transposes) are part of the
  op key, and masked/accumulated nodes are impure and never eligible.

Entries are (capacity-bounded) strong references: a cached carrier must
stay alive to be republished.  The capacity bound plus eager
invalidation keep retention proportional to ``MEMO_CAPACITY``, and a
context's ``free``/``finalize`` clears its memo outright.

Admission policy (``MEMO_ADMISSION``): storing an entry is not free —
a future hit pays the transactional republish (commit-gate validation
plus the reference store), so caching a result cheaper to recompute
than to republish is a strict loss.  The gate compares each *estimated*
store's rebuild-savings estimate against a measured exponential moving
average of republish overhead (:func:`record_commit_ms`, fed by the
scheduler's memo-republish path) and skips the store when the savings
are smaller (``memo_admission_skips`` counts them).  Evidence-gated:
the overhead average starts at zero and only grows from real measured
republishes, so nothing is ever skipped before the cost is observed;
algorithm building blocks store *measured* build times and bypass the
gate entirely.  A stats reset clears the average (reset hook), keeping
tests and benches deterministic.

Delta tier (``ENGINE_DELTA``): eager invalidation has one refinement —
when a write arrives as a batched delta (``Matrix.update_batch``), the
sequence layer calls :func:`patch_handle_blocks` instead of
:func:`invalidate_handle`.  Algorithm-block entries keyed at exactly
the pre-write version whose kind has a registered patch rule
(:mod:`repro.algorithms.delta`: degree vectors, pattern matrices,
tril, warm fixpoints) are updated from the write set and re-keyed at
the post-write version; everything else drops as before.  Soundness is
inherited: a patched entry exists only under the new version's key,
and patching happens before the write returns, so no forcing can
observe a stale carrier under a live key.

Eviction policy (``MEMO_EVICTION``): capacity pressure used to evict by
recency alone, which throws away an expensive SpGEMM product to keep a
trivial apply just because the apply came later.  The default ``cost``
policy instead scores each entry by what evicting it would *cost to
rebuild* — the calibrated savings estimate recorded at store time
(products avoided × observed kernel rate, or the measured build time
for algorithm building blocks) — exponentially aged by how many
lookups/stores ago the entry was last touched (half-life = one
capacity's worth of touches, so a stale expensive entry does eventually
yield to fresh cheap ones).  The victim is the minimum-score entry;
``MEMO_EVICTION=lru`` restores the pure recency order bit-for-bit.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Any, Iterable

from ..internals import config
from .stats import STATS, register_reset_hook

__all__ = [
    "ResultMemo", "invalidate_handle", "release_handle",
    "record_commit_ms", "commit_overhead_ms",
    "export_admission", "seed_admission",
    "register_patch_resolver", "patch_handle_blocks",
]

#: EWMA of measured memo-republish (commit) overhead in ms, and the
#: number of observations behind it.  Guarded by ``_OVERHEAD_LOCK``.
_OVERHEAD_LOCK = threading.Lock()
_commit_overhead_ms = 0.0
_commit_samples = 0

#: EWMA smoothing: each new sample carries this weight.
_OVERHEAD_ALPHA = 0.3


def record_commit_ms(ms: float) -> None:
    """Feed one measured memo-republish wall time into the admission
    model (called by the scheduler after a successful republish)."""
    global _commit_overhead_ms, _commit_samples
    ms = max(0.0, float(ms))
    with _OVERHEAD_LOCK:
        if _commit_samples == 0:
            _commit_overhead_ms = ms
        else:
            _commit_overhead_ms += _OVERHEAD_ALPHA * (ms - _commit_overhead_ms)
        _commit_samples += 1


def commit_overhead_ms() -> float:
    """The measured republish overhead (0.0 until first observation)."""
    with _OVERHEAD_LOCK:
        return _commit_overhead_ms if _commit_samples else 0.0


def export_admission() -> dict:
    """The admission model's state, as a warm-start store sidecar
    payload (:mod:`repro.store`)."""
    with _OVERHEAD_LOCK:
        return {"overhead_ms": _commit_overhead_ms,
                "samples": _commit_samples}


def seed_admission(data: dict) -> None:
    """Install a persisted republish-overhead EWMA as a warm prior.

    Only when this process has no measurements of its own — live
    observations always win, and a stats reset clears the seed (the
    same contract as :func:`repro.engine.passes.cost.seed_calibration`).
    The seed counts as one observation: the admission gate's
    evidence requirement is satisfied by the previous process's
    evidence, which is the point of persisting it.
    """
    global _commit_overhead_ms, _commit_samples
    try:
        ms = float(data.get("overhead_ms", 0.0))
        samples = int(data.get("samples", 0))
    except (TypeError, ValueError, AttributeError):
        return
    if ms <= 0.0 or samples < 1:
        return
    with _OVERHEAD_LOCK:
        if _commit_samples == 0:
            _commit_overhead_ms = ms
            _commit_samples = 1


def _reset_overhead() -> None:
    global _commit_overhead_ms, _commit_samples
    with _OVERHEAD_LOCK:
        _commit_overhead_ms = 0.0
        _commit_samples = 0


register_reset_hook(_reset_overhead)

#: Every live memo, so handle writes can invalidate eagerly without the
#: sequence layer knowing which contexts cached what (an object may be
#: re-homed across contexts via ``GrB_Context_switch``).
_MEMOS: "weakref.WeakSet[ResultMemo]" = weakref.WeakSet()
_MEMOS_LOCK = threading.Lock()

#: Uids any live entry has ever named (dep or owner) — the O(1) fast
#: path that keeps :func:`invalidate_handle` free for the overwhelming
#: majority of submits (BFS hot loops never store).  Deliberately an
#: over-approximation that only grows: uids are monotonic and never
#: reused, and a *missed* drop is mere delayed reclamation — keys carry
#: input versions, so a stale entry can never be served after a write.
_TRACKED_UIDS: set[int] = set()


class ResultMemo:
    """A bounded LRU map of memo key → committed result carrier."""

    def __init__(self, capacity: int | None = None):
        self._lock = threading.Lock()
        self._capacity = capacity
        #: monotonic touch clock: advances on every hit and store; the
        #: cost policy ages scores by touches-since-last-use.
        self._tick = 0
        #: key -> [carrier, frozenset of dep uids, owner uid | None,
        #:         rebuild-cost estimate (ms), last-touched tick]
        self._entries: "OrderedDict[tuple, list]" = OrderedDict()
        #: dep uid -> set of keys depending on it (write invalidation)
        self._by_dep: dict[int, set[tuple]] = {}
        #: owner uid -> set of keys whose carrier was committed to it
        #: (dropped only on ``GrB_free`` of that handle)
        self._by_owner: dict[int, set[tuple]] = {}
        with _MEMOS_LOCK:
            _MEMOS.add(self)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def capacity(self) -> int:
        cap = self._capacity
        if cap is None:
            cap = int(config.get_option("MEMO_CAPACITY"))
        return max(1, cap)

    # -- the cache protocol ---------------------------------------------------

    def lookup(self, key: tuple) -> Any | None:
        """The cached carrier for *key*, or ``None`` (counted as a miss).
        A hit refreshes the entry's recency (LRU position and cost-score
        age); the *hit* counter is bumped by the schedule pass when the
        decision is committed.

        On an in-memory miss, algorithm-block keys fall through to the
        persistent warm-start store (:mod:`repro.store`): a disk hit is
        re-inserted through :meth:`store` — so it persists nothing new
        (content-addressed) but becomes an ordinary entry — and
        returned as if it had been here all along.  The probe happens
        outside the memo lock; the store layer is safe under
        concurrent readers.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._tick += 1
                entry[4] = self._tick
                return entry[0]
        warm = self._probe_store(key)
        if warm is not None:
            carrier, cost_ms = warm
            self.store(key, carrier, deps=(key[2][0],), cost_ms=cost_ms)
            return carrier
        STATS.bump("memo_misses")
        return None

    @staticmethod
    def _storable_key(key: tuple) -> bool:
        """Keys the persistent tier can address: versioned algo blocks."""
        return (isinstance(key, tuple) and len(key) == 5
                and key[0] == "algo"
                and isinstance(key[2], tuple) and len(key[2]) == 2)

    def _probe_store(self, key: tuple):
        """``(carrier, cost_ms)`` from the warm-start store, or ``None``
        — a cheap attribute check when no store is configured."""
        if not (config.STORE_ENABLE and config.STORE_DIR):
            return None
        if not self._storable_key(key):
            return None
        try:
            from ..store import tier

            return tier.probe(key)
        except Exception:
            return None  # the store may speed things up, never break them

    def _persist_store(self, key: tuple, carrier: Any,
                       cost_ms: float) -> None:
        """Store-behind: mirror a fresh algo-block entry to disk."""
        if not (config.STORE_ENABLE and config.STORE_DIR):
            return
        if not self._storable_key(key):
            return
        try:
            from ..store import tier

            tier.persist(key, carrier, cost_ms)
        except Exception:
            pass

    def store(
        self,
        key: tuple,
        carrier: Any,
        deps: Iterable[int],
        owner_uid: int | None = None,
        cost_ms: float = 0.0,
        estimated: bool = False,
    ) -> None:
        """Record a committed carrier, evicting past capacity.

        ``cost_ms`` is the estimated cost of rebuilding this entry (the
        savings a future hit buys); the cost eviction policy keeps the
        entries whose aged estimate is highest.  ``estimated=True``
        marks a cost-model estimate (expression stores) rather than a
        measured build time — only those are subject to the
        ``MEMO_ADMISSION`` gate, which skips the store outright when
        the estimate is below the measured republish overhead.
        """
        if (estimated and config.get_option("MEMO_ADMISSION")
                and 0.0 < cost_ms < commit_overhead_ms()):
            STATS.bump("memo_admission_skips")
            STATS.instant(
                "memo:admission-skip", "memo",
                {"cost_ms": round(float(cost_ms), 6),
                 "overhead_ms": round(commit_overhead_ms(), 6)},
            )
            return
        deps = frozenset(deps)
        with self._lock:
            if key in self._entries:
                self._drop(key)
            self._tick += 1
            self._entries[key] = [
                carrier, deps, owner_uid, max(0.0, float(cost_ms)),
                self._tick,
            ]
            for uid in deps:
                self._by_dep.setdefault(uid, set()).add(key)
                _TRACKED_UIDS.add(uid)
            if owner_uid is not None:
                self._by_owner.setdefault(owner_uid, set()).add(key)
                _TRACKED_UIDS.add(owner_uid)
            STATS.bump("memo_stores")
            cap = self.capacity
            while len(self._entries) > cap:
                self._evict_one(key)
        self._persist_store(key, carrier, cost_ms)

    def _evict_one(self, just_stored: tuple) -> None:
        # Caller holds self._lock; len(self._entries) > 1 is guaranteed
        # (capacity >= 1 and we are past it).
        policy = config.get_option("MEMO_EVICTION")
        if policy == "lru":
            victim = next(iter(self._entries))
        else:
            victim = min(
                (k for k in self._entries if k != just_stored),
                key=self._score,
            )
        score = self._score(victim)
        cost_ms = self._entries[victim][3]
        self._drop(victim)
        STATS.bump("memo_evictions")
        STATS.instant(
            "memo:evict", "memo",
            {"policy": policy, "cost_ms": round(cost_ms, 6),
             "score_ms": round(score, 6)},
        )

    def _score(self, key: tuple) -> float:
        """Aged rebuild-savings estimate: the stored cost decayed by a
        half-life of one capacity's worth of touches since last use.
        Entries stored with no estimate keep a tiny floor so ties still
        break by recency.  Caller holds ``self._lock``."""
        entry = self._entries[key]
        cost_ms, last_tick = entry[3], entry[4]
        age = max(0, self._tick - last_tick)
        half_life = float(max(1, self.capacity))
        return max(cost_ms, 1e-9) * 0.5 ** (age / half_life)

    def entries(self) -> list[tuple[tuple, Any, float]]:
        """Point-in-time ``(key, carrier, cost_ms)`` snapshot.

        The durability plane walks this to persist warm algorithm
        blocks at checkpoint time; carriers are committed (immutable)
        so sharing the references outside the lock is safe.
        """
        with self._lock:
            return [(k, e[0], e[3]) for k, e in self._entries.items()]

    def invalidate(self, uid: int) -> int:
        """Drop every entry depending on handle *uid*; returns count."""
        with self._lock:
            return self._invalidate_index(self._by_dep, uid)

    def patch(
        self, uid: int, old_version: int, new_version: int,
        delta: Any, resolver: Any,
    ) -> tuple[int, int]:
        """Delta-invalidation: a write to *uid* arrived as a delta.

        Entries depending on *uid* whose key is an algorithm block at
        exactly ``(uid, old_version)`` and whose kind has a patch rule
        are *updated* from the write set and re-keyed at
        ``(uid, new_version)`` — deps, owner, and cost metadata carry
        over, so the block stays warm across the write.  Everything
        else (expression entries, stale versions, kinds without a
        rule, rules that decline) drops exactly as
        :meth:`invalidate` would have dropped it.

        Rules run under the memo lock: they must be pure array code
        over the cached value and the delta — no memo re-entry, no
        forcing.  A rule returning ``None`` (or raising) declines and
        the entry is dropped.  Returns ``(patched, dropped)``.
        """
        patched = dropped = 0
        with self._lock:
            keys = self._by_dep.get(uid)
            if not keys:
                return 0, 0
            for key in list(keys):
                entry = self._entries.get(key)
                if entry is None:
                    continue
                new_value = None
                if (
                    isinstance(key, tuple) and len(key) == 5
                    and key[0] == "algo"
                    and key[2] == (uid, old_version)
                ):
                    rule = resolver(key[1])
                    if rule is not None:
                        try:
                            new_value = rule(entry[0], key[3], delta)
                        except Exception:
                            new_value = None
                carrier, deps, owner_uid, cost_ms, _ = entry
                self._drop(key)
                if new_value is None:
                    dropped += 1
                    continue
                new_key = (key[0], key[1], (uid, new_version), key[3], key[4])
                self._tick += 1
                self._entries[new_key] = [
                    new_value, deps, owner_uid, cost_ms, self._tick,
                ]
                for dep in deps:
                    self._by_dep.setdefault(dep, set()).add(new_key)
                if owner_uid is not None:
                    self._by_owner.setdefault(owner_uid, set()).add(new_key)
                patched += 1
        if patched:
            STATS.bump("memo_delta_patches", patched)
        if dropped:
            STATS.bump("memo_delta_drops", dropped)
            STATS.bump("memo_invalidations", dropped)
        if patched or dropped:
            STATS.instant(
                "memo:patch", "memo",
                {"uid": uid, "patched": patched, "dropped": dropped,
                 "delta_nnz": int(getattr(delta, "n", 0))},
            )
        return patched, dropped

    def release(self, uid: int) -> int:
        """Handle *uid* was freed: drop entries depending on it *and*
        entries whose cached carrier was committed to it."""
        with self._lock:
            n = self._invalidate_index(self._by_dep, uid)
            n += self._invalidate_index(self._by_owner, uid)
            return n

    def clear(self) -> None:
        """Drop everything (context ``free``/``finalize``)."""
        with self._lock:
            self._entries.clear()
            self._by_dep.clear()
            self._by_owner.clear()

    def _invalidate_index(self, index: dict, uid: int) -> int:
        # Caller holds self._lock.
        keys = index.pop(uid, None)
        if not keys:
            return 0
        n = 0
        for key in list(keys):
            if key in self._entries:
                self._drop(key)
                n += 1
        if n:
            STATS.bump("memo_invalidations", n)
        return n

    def _drop(self, key: tuple) -> None:
        # Caller holds self._lock.
        _, deps, owner_uid, _, _ = self._entries.pop(key)
        for uid in deps:
            bucket = self._by_dep.get(uid)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_dep[uid]
        if owner_uid is not None:
            bucket = self._by_owner.get(owner_uid)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_owner[owner_uid]


def invalidate_handle(uid: int) -> None:
    """A handle advanced (write): drop dependent entries from every
    live memo.  Called from the sequence layer on *every* submit, so
    the common case (no entry anywhere names this uid) must stay
    O(1) — one set probe, no locks."""
    if uid not in _TRACKED_UIDS:
        return
    with _MEMOS_LOCK:
        memos = list(_MEMOS)
    for memo in memos:
        memo.invalidate(uid)


#: The registered kind → patch-rule resolver (one process-wide slot,
#: installed by :mod:`repro.algorithms.delta` at import).  Keeping the
#: rules out of this module avoids an engine → algorithms import cycle;
#: until the algorithms package is imported no patchable entries exist
#: anyway, so the unregistered state degrades to plain invalidation.
_PATCH_RESOLVER = None


def register_patch_resolver(resolver) -> None:
    """Install the ``kind -> rule | None`` resolver the patch tier
    consults (idempotent; last registration wins)."""
    global _PATCH_RESOLVER
    _PATCH_RESOLVER = resolver


def patch_handle_blocks(
    uid: int, old_version: int, new_version: int, delta: Any,
) -> None:
    """A handle advanced via a batched *delta* write: give every live
    memo the chance to patch dependent blocks in place instead of
    dropping them.  Falls back to :func:`invalidate_handle` when the
    delta tier is ablated or no resolver is registered."""
    if uid not in _TRACKED_UIDS:
        return
    if not config.ENGINE_DELTA or _PATCH_RESOLVER is None:
        invalidate_handle(uid)
        return
    with _MEMOS_LOCK:
        memos = list(_MEMOS)
    for memo in memos:
        memo.patch(uid, old_version, new_version, delta, _PATCH_RESOLVER)


def release_handle(uid: int) -> None:
    """A handle died (``GrB_free``): drop entries depending on it and
    entries caching *its* committed carrier, so the carrier becomes
    collectable once the application drops its own references."""
    if uid not in _TRACKED_UIDS:
        return
    with _MEMOS_LOCK:
        memos = list(_MEMOS)
    for memo in memos:
        memo.release(uid)

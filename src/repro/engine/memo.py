"""Cross-forcing result cache (§III optimization latitude).

The planner's CSE pass hash-conses duplicates *within* one forcing;
this module extends the same idea across API calls: a bounded LRU memo
of ``memo key → committed carrier`` per :class:`~repro.core.context.
Context`, where the key (:func:`repro.engine.dag.memo_key`) identifies
a pure built-in computation over *versioned* input handles.  When a
later sequence re-submits ``C = A ⊕.⊗ A``, the CSE pass finds the
committed product here and the scheduler republishes it through the
transactional commit gate (:mod:`repro.engine.txn`) instead of
re-running the kernel — the Julia-GraphBLAS "reuse materialized results
across calls" win.

Soundness rests on three invariants:

* **Versioned keys** — every captured input carries ``(uid, version)``;
  uids come from a monotonic counter (never reused, unlike ``id()``)
  and versions advance on every write, so a key can never alias a
  different committed value.
* **Eager invalidation** — every write to a handle calls
  :func:`invalidate_handle`, dropping all entries that *depend* on
  that uid in every live memo.  ``GrB_free`` calls
  :func:`release_handle`, which additionally drops entries whose
  cached carrier was committed *to* that handle (tracked separately —
  the output is not a value dependency, or re-submitting
  ``C = A ⊕.⊗ A`` would invalidate its own hit), so freeing the object
  whose result was cached releases the carrier (the gc/weakref
  property ``GrB_free`` demands).
* **Scoped stores** — the memo lives on the Context, so a hit can never
  cross a context (and hence never a mode) boundary; descriptor
  settings that change the computed value (transposes) are part of the
  op key, and masked/accumulated nodes are impure and never eligible.

Entries are (capacity-bounded) strong references: a cached carrier must
stay alive to be republished.  The LRU bound plus eager invalidation
keep retention proportional to ``MEMO_CAPACITY``, and a context's
``free``/``finalize`` clears its memo outright.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Any, Iterable

from ..internals import config
from .stats import STATS

__all__ = ["ResultMemo", "invalidate_handle", "release_handle"]

#: Every live memo, so handle writes can invalidate eagerly without the
#: sequence layer knowing which contexts cached what (an object may be
#: re-homed across contexts via ``GrB_Context_switch``).
_MEMOS: "weakref.WeakSet[ResultMemo]" = weakref.WeakSet()
_MEMOS_LOCK = threading.Lock()

#: Uids any live entry has ever named (dep or owner) — the O(1) fast
#: path that keeps :func:`invalidate_handle` free for the overwhelming
#: majority of submits (BFS hot loops never store).  Deliberately an
#: over-approximation that only grows: uids are monotonic and never
#: reused, and a *missed* drop is mere delayed reclamation — keys carry
#: input versions, so a stale entry can never be served after a write.
_TRACKED_UIDS: set[int] = set()


class ResultMemo:
    """A bounded LRU map of memo key → committed result carrier."""

    def __init__(self, capacity: int | None = None):
        self._lock = threading.Lock()
        self._capacity = capacity
        #: key -> (carrier, frozenset of dep uids, owner uid | None)
        self._entries: "OrderedDict[tuple, tuple[Any, frozenset, int | None]]" = (
            OrderedDict()
        )
        #: dep uid -> set of keys depending on it (write invalidation)
        self._by_dep: dict[int, set[tuple]] = {}
        #: owner uid -> set of keys whose carrier was committed to it
        #: (dropped only on ``GrB_free`` of that handle)
        self._by_owner: dict[int, set[tuple]] = {}
        with _MEMOS_LOCK:
            _MEMOS.add(self)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def capacity(self) -> int:
        cap = self._capacity
        if cap is None:
            cap = int(config.get_option("MEMO_CAPACITY"))
        return max(1, cap)

    # -- the cache protocol ---------------------------------------------------

    def lookup(self, key: tuple) -> Any | None:
        """The cached carrier for *key*, or ``None`` (counted as a miss).
        A hit refreshes the entry's LRU position; the *hit* counter is
        bumped by the schedule pass when the decision is committed."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                STATS.bump("memo_misses")
                return None
            self._entries.move_to_end(key)
            return entry[0]

    def store(
        self,
        key: tuple,
        carrier: Any,
        deps: Iterable[int],
        owner_uid: int | None = None,
    ) -> None:
        """Record a committed carrier, evicting LRU past capacity."""
        deps = frozenset(deps)
        with self._lock:
            if key in self._entries:
                self._drop(key)
            self._entries[key] = (carrier, deps, owner_uid)
            for uid in deps:
                self._by_dep.setdefault(uid, set()).add(key)
                _TRACKED_UIDS.add(uid)
            if owner_uid is not None:
                self._by_owner.setdefault(owner_uid, set()).add(key)
                _TRACKED_UIDS.add(owner_uid)
            STATS.bump("memo_stores")
            cap = self.capacity
            while len(self._entries) > cap:
                old_key = next(iter(self._entries))
                self._drop(old_key)
                STATS.bump("memo_evictions")

    def invalidate(self, uid: int) -> int:
        """Drop every entry depending on handle *uid*; returns count."""
        with self._lock:
            return self._invalidate_index(self._by_dep, uid)

    def release(self, uid: int) -> int:
        """Handle *uid* was freed: drop entries depending on it *and*
        entries whose cached carrier was committed to it."""
        with self._lock:
            n = self._invalidate_index(self._by_dep, uid)
            n += self._invalidate_index(self._by_owner, uid)
            return n

    def clear(self) -> None:
        """Drop everything (context ``free``/``finalize``)."""
        with self._lock:
            self._entries.clear()
            self._by_dep.clear()
            self._by_owner.clear()

    def _invalidate_index(self, index: dict, uid: int) -> int:
        # Caller holds self._lock.
        keys = index.pop(uid, None)
        if not keys:
            return 0
        n = 0
        for key in list(keys):
            if key in self._entries:
                self._drop(key)
                n += 1
        if n:
            STATS.bump("memo_invalidations", n)
        return n

    def _drop(self, key: tuple) -> None:
        # Caller holds self._lock.
        _, deps, owner_uid = self._entries.pop(key)
        for uid in deps:
            bucket = self._by_dep.get(uid)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_dep[uid]
        if owner_uid is not None:
            bucket = self._by_owner.get(owner_uid)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_owner[owner_uid]


def invalidate_handle(uid: int) -> None:
    """A handle advanced (write): drop dependent entries from every
    live memo.  Called from the sequence layer on *every* submit, so
    the common case (no entry anywhere names this uid) must stay
    O(1) — one set probe, no locks."""
    if uid not in _TRACKED_UIDS:
        return
    with _MEMOS_LOCK:
        memos = list(_MEMOS)
    for memo in memos:
        memo.invalidate(uid)


def release_handle(uid: int) -> None:
    """A handle died (``GrB_free``): drop entries depending on it and
    entries caching *its* committed carrier, so the carrier becomes
    collectable once the application drops its own references."""
    if uid not in _TRACKED_UIDS:
        return
    with _MEMOS_LOCK:
        memos = list(_MEMOS)
    for memo in memos:
        memo.release(uid)

"""Transactional kernel commits (§V "well-defined state on failure").

Kernels in this codebase assemble their outputs into *scratch* state:
fresh carriers (immutable dataclasses over fresh numpy arrays) that no
GraphBLAS object references until execution finishes.  The commit point
— where a scratch carrier becomes the output object's visible state —
is therefore a single reference store, and :func:`commit` makes that
point explicit and guarded:

* a fault injected at ``txn.commit`` (or anywhere earlier in the
  kernel) aborts the transaction *before* the store, so the output
  object keeps its last-materialized value exactly as §V requires;
* a cheap structural validation refuses to publish a corrupt carrier
  (raising :class:`InvalidObjectError` instead), turning silent
  corruption into the §V error path.

Every execution funnel routes through here: blocking mode via
``OpaqueObject._run_now``, the nonblocking scheduler via
``_checked_evaluate``, and *republished* carriers — CSE alias reuse
and cross-forcing result-memo hits — which pass the same gate as a
fresh kernel result so a cached value can never dodge the fault plane
or publish corrupt state.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import InvalidObjectError
from ..faults.plane import maybe_inject

__all__ = ["commit", "validate_carrier"]


def validate_carrier(carrier: Any) -> None:
    """Cheap structural invariants on a scratch carrier (O(1) checks —
    full value validation is ``validate.check_object``'s job)."""
    row_ids = getattr(carrier, "row_ids", None)
    if row_ids is not None:  # DcsrData-shaped (hypersparse tier)
        indptr = carrier.indptr
        if len(indptr) != len(row_ids) + 1:
            raise InvalidObjectError(
                f"refusing to commit corrupt scratch state: dcsr indptr "
                f"length {len(indptr)} != nonempty rows+1 ({len(row_ids) + 1})"
            )
        if len(indptr) and (indptr[0] != 0
                            or indptr[-1] != len(carrier.col_indices)):
            raise InvalidObjectError(
                "refusing to commit corrupt scratch state: dcsr indptr does "
                "not span col_indices"
            )
        if len(carrier.col_indices) != len(carrier.values):
            raise InvalidObjectError(
                "refusing to commit corrupt scratch state: col/value length "
                "mismatch"
            )
        return
    indptr = getattr(carrier, "indptr", None)
    if indptr is not None:  # MatData-shaped
        nrows = carrier.nrows
        if len(indptr) != nrows + 1:
            raise InvalidObjectError(
                f"refusing to commit corrupt scratch state: indptr length "
                f"{len(indptr)} != nrows+1 ({nrows + 1})"
            )
        if len(indptr) and (indptr[0] != 0 or indptr[-1] != len(carrier.col_indices)):
            raise InvalidObjectError(
                "refusing to commit corrupt scratch state: indptr does not "
                "span col_indices"
            )
        if len(carrier.col_indices) != len(carrier.values):
            raise InvalidObjectError(
                "refusing to commit corrupt scratch state: col/value length "
                "mismatch"
            )
        return
    indices = getattr(carrier, "indices", None)
    if indices is not None:  # VecData-shaped
        if len(indices) != len(carrier.values):
            raise InvalidObjectError(
                "refusing to commit corrupt scratch state: index/value "
                "length mismatch"
            )


def commit(label: str, carrier: Any) -> Any:
    """The transaction's commit gate: fault point + validation, then
    hand the scratch carrier back for the (atomic) reference store.

    Matrix carriers additionally pass the cost model's format decision
    (:func:`~repro.engine.passes.cost.commit_format`): the committed
    artifact is what every later forcing iterates, so the CSR-vs-DCSR
    choice is re-derived here from the final (nrows, nnz) shape and the
    scratch carrier repacked if the kernel's assembly disagreed."""
    maybe_inject("txn.commit", label=label)
    if getattr(carrier, "ncols", None) is not None and \
            getattr(carrier, "col_indices", None) is not None:
        from .passes.cost import commit_format

        carrier = commit_format(label, carrier)
    validate_carrier(carrier)
    return carrier

"""Topological forcing of the expression DAG (§III, §V).

``force(tail)`` is the single entry point: it collects the pending
ancestors of *tail* (exactly the subgraph the spec says a forcing call
must complete — unrelated pending work stays deferred), hands them to
the fusion planner, then executes them in dependency order.  When a
Context allows more than one thread, independent ready nodes run
concurrently on a shared thread pool, throttled per Context by its
effective ``nthreads``.

Error contract (§V): execution errors raised by a kernel are recorded
on the node, the output object's error string is set, and the first
not-yet-raised failure in the forced subgraph is re-raised *from the
forcing call*.  Dependents of a failed node never run — they propagate
the failure and carry the pre-failure state forward, which is how the
old runtime's "a failed op drops the rest of the sequence" behaviour is
preserved across objects.

A process-wide execution lock serializes whole forcings; kernels inside
one forcing still run in parallel with each other.  This keeps the §VI
single-writer discipline trivially safe without per-object locks held
across kernel calls.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as _futures_wait

from ..core.errors import ExecutionError, GraphBLASError, PanicError
from ..faults.plane import armed, maybe_inject
from ..faults.retry import with_retry
from ..internals.applyselect import run_stages
from ..internals.containers import VecData
from ..internals.maskaccum import mat_mask_keys, vec_mask_keys
from . import cancel
from .dag import DONE, ELIDED, FAILED, PENDING, Node
from .stats import STATS
from .txn import commit as _txn_commit

__all__ = ["force", "chain_complete_safe"]

#: Serializes forcings end to end (reentrant: a kernel that forces a
#: scalar input mid-forcing must not deadlock).
_EXEC_LOCK = threading.RLock()

_pool: ThreadPoolExecutor | None = None
_POOL_MAX = 16


def _get_pool() -> ThreadPoolExecutor:
    global _pool
    if _pool is None:
        _pool = ThreadPoolExecutor(
            max_workers=_POOL_MAX, thread_name_prefix="grb-engine"
        )
    return _pool


def shutdown_pool() -> None:
    """Tear down the shared worker pool (finalize / test isolation)."""
    global _pool
    with _EXEC_LOCK:
        if _pool is not None:
            _pool.shutdown(wait=True)
            _pool = None


# -- public API ---------------------------------------------------------------


def force(tail: Node):
    """Execute everything *tail* depends on; return its result carrier.

    Raises the first not-yet-surfaced execution error in the forced
    subgraph (marking it raised, so each deferred error surfaces from
    exactly one forcing call — §V).
    """
    with _EXEC_LOCK:
        STATS.bump("forces")
        executed: list[Node] = []
        if tail.state == PENDING:
            from .fusion import plan_subgraph

            t0 = time.perf_counter()
            # Republish the caller's cancel token process-wide so kernel
            # boundaries reached on pool worker threads observe it too
            # (safe: _EXEC_LOCK serializes forcings).
            with cancel.forcing_scope():
                cancel.checkpoint(f"force:{tail.label}")
                executed = _collect(tail)
                plan_subgraph(executed)
                _execute(executed)
            STATS.span(
                f"force:{tail.label}", "force", t0,
                time.perf_counter() - t0, {"nodes": len(executed)},
            )
        for node in executed:
            if node.state == FAILED and not node.exc_raised:
                node.exc_raised = True
                raise node.exc
        if tail.state == FAILED and not tail.exc_raised:
            tail.exc_raised = True
            raise tail.exc
        return tail.result


def chain_complete_safe(tail: Node) -> bool:
    """True when every pending ancestor of *tail* is guaranteed not to
    raise an execution error — the condition under which
    ``wait(COMPLETE)`` may legally leave the sequence deferred (§V:
    COMPLETE only promises errors have been surfaced)."""
    stack = [tail]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen or node.state != PENDING:
            continue
        if not node.complete_safe:
            return False
        seen.add(id(node))
        stack.extend(node.dep_nodes())
    return True


# -- subgraph collection ------------------------------------------------------


def _collect(tail: Node) -> list[Node]:
    """Pending ancestors of *tail* in topological (deps-first) order."""
    order: list[Node] = []
    seen: set[int] = set()
    stack: list[tuple[Node, bool]] = [(tail, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in seen or node.state != PENDING:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for dep in node.dep_nodes():
            if dep.state == PENDING and id(dep) not in seen:
                stack.append((dep, False))
    return order


# -- execution ----------------------------------------------------------------


def _node_cap(node: Node) -> int:
    ctx = getattr(node.owner, "_ctx", None)
    if ctx is None:
        return 1
    try:
        if getattr(ctx, "is_degraded", False):
            return 1  # persistent faults demoted this context to serial
        return max(1, int(ctx.nthreads))
    except Exception:
        return 1


def _execute(nodes: list[Node]) -> None:
    n = len(nodes)
    if n == 0:
        return
    if n == 1 or max(_node_cap(node) for node in nodes) <= 1:
        for node in nodes:  # topo order: deps already settled
            _run_node(node)
        return
    _execute_parallel(nodes)


def _execute_parallel(nodes: list[Node]) -> None:
    in_graph = {id(node) for node in nodes}
    indeg: dict[int, int] = {}
    dependents: dict[int, list[Node]] = {}
    for node in nodes:
        all_deps = list(node.dep_nodes())
        if node.alias_of is not None:
            # A CSE alias publishes its representative's result: the
            # representative must settle first, like any data edge.
            all_deps.append(node.alias_of)
        deps = [
            d
            for d in dict.fromkeys(all_deps)
            if id(d) in in_graph and d.state in (PENDING, ELIDED)
        ]
        indeg[id(node)] = len(deps)
        for d in deps:
            dependents.setdefault(id(d), []).append(node)

    ready = [node for node in nodes if indeg[id(node)] == 0]
    running: dict[int, int] = {}
    inflight: dict = {}
    remaining = len(nodes)
    pool = _get_pool()

    def _finish(node: Node) -> None:
        nonlocal remaining
        remaining -= 1
        ctx_id = id(getattr(node.owner, "_ctx", None))
        running[ctx_id] = running.get(ctx_id, 0) - 1
        for dep in dependents.get(id(node), ()):
            indeg[id(dep)] -= 1
            if indeg[id(dep)] == 0:
                ready.append(dep)

    while remaining:
        batch: list[Node] = []
        held: list[Node] = []
        for node in ready:
            ctx_id = id(getattr(node.owner, "_ctx", None))
            if running.get(ctx_id, 0) < _node_cap(node):
                running[ctx_id] = running.get(ctx_id, 0) + 1
                batch.append(node)
            else:
                held.append(node)
        ready = held
        if not batch and not inflight:
            # Every ready node is throttled and nothing is running:
            # dispatch one anyway to guarantee progress.
            node = ready.pop(0)
            ctx_id = id(getattr(node.owner, "_ctx", None))
            running[ctx_id] = running.get(ctx_id, 0) + 1
            batch = [node]
        if len(batch) == 1 and not inflight:
            node = batch[0]
            _run_node(node)
            _finish(node)
            continue
        if len(batch) > 1:
            STATS.bump("parallel_batches")
            STATS.bump("parallel_nodes", len(batch))
        for node in batch:
            inflight[pool.submit(_pool_run, node)] = node
        done, _ = _futures_wait(inflight, return_when=FIRST_COMPLETED)
        for fut in done:
            node = inflight.pop(fut)
            try:
                fut.result()  # _pool_run only raises _WorkerCrash
            except _WorkerCrash:
                _absorb_worker_crash(node)
            _finish(node)


class _WorkerCrash(Exception):
    """A simulated engine-pool node failure: the worker died before the
    node ran.  Absorbed by the dispatcher — never user-visible."""


def _pool_run(node: Node) -> None:
    """Pool-worker entry: give the fault plane its shot at this worker
    (a straggler via ``scheduler.slow``, a node failure via
    ``scheduler.worker``), then run the node normally.  The owning
    context's fault domain rides along so targeted chaos
    (``FaultSpec(where={"domain": ...})``) hits one tenant only."""
    domain = _node_domain(node)
    try:
        maybe_inject("scheduler.slow", label=node.label, domain=domain)
        with armed():  # the dispatcher's crash recovery protects this site
            maybe_inject("scheduler.worker", label=node.label, domain=domain)
    except ExecutionError as exc:
        raise _WorkerCrash(node.label) from exc
    _run_node(node)


def _node_domain(node: Node) -> str | None:
    """The fault domain of the context owning *node* (None = unscoped)."""
    ctx = getattr(node.owner, "_ctx", None)
    try:
        return None if ctx is None else ctx.fault_domain
    except Exception:
        return None


def _node_stats(node: Node):
    """The owning context's tenant rollup, if one was ever created.

    Attribution never *creates* the rollup: non-serving workloads pay a
    single attribute probe and nothing else."""
    ctx = getattr(node.owner, "_ctx", None)
    return None if ctx is None else getattr(ctx, "_local_stats", None)


def _absorb_worker_crash(node: Node) -> None:
    """Recover from a simulated worker failure by re-running the node on
    the dispatcher thread; repeated faults degrade the owning context's
    parallel paths to serial."""
    STATS.bump("worker_faults")
    ctx = getattr(node.owner, "_ctx", None)
    if ctx is not None and getattr(ctx, "record_worker_fault", None):
        if ctx.record_worker_fault():
            STATS.bump("degraded_serial")
    _run_node(node)


# -- single-node execution ----------------------------------------------------


def _resolve_prev(node: Node):
    """The carrier of the output object's previous state, skipping over
    producers that were fused away (their value lives inside a pipeline
    and was, by construction, never observable)."""
    src = node.prev
    while src.node is not None and src.node.state == ELIDED:
        src = src.node.prev
    return src.resolve()


def _run_node(node: Node) -> None:
    """Execute one node.  Failures are recorded on the node (and the
    owner's error string, per §V) for ``force`` to surface — the single
    exception is cooperative cancellation: a tripped deadline checkpoint
    raises ``GrB_TIMEOUT`` *before* any kernel or commit runs, so the
    node stays PENDING (deferred) and every carrier keeps its
    last-committed value."""
    if node.state == DONE:
        return  # completed early by a small-op batch (another leader)
    cancel.checkpoint(node.label)
    for dep in node.dep_nodes():
        if dep.state == FAILED:
            node.state = FAILED
            node.exc = dep.exc
            node.result = _carrier_before(node)
            return
    if node.state == ELIDED:
        return  # absorbed into a consumer's pipeline; nothing to run
    t0 = time.perf_counter()
    if node.memo_result is not None:
        # Cross-forcing memo hit: republish the cached committed carrier
        # through the same transactional gate a fresh kernel result
        # would pass.  A rejected commit (or any other failure) falls
        # back to running this node's own kernel — the §V-transparent
        # outcome, mirroring the CSE alias fallback below.
        cached, node.memo_result = node.memo_result, None
        try:
            node.result = with_retry(
                lambda: _txn_commit(node.label, cached), node.label
            )
            node.state = DONE
            elapsed = time.perf_counter() - t0
            STATS.bump("memo_reused")
            # Feed the measured republish cost into the admission gate:
            # a future store cheaper to rebuild than this is a loss.
            from .memo import record_commit_ms

            record_commit_ms(elapsed * 1e3)
            local = _node_stats(node)
            if local is not None:
                local.bump("memo_reused")
            STATS.span(
                f"memo:{node.kind}", "kernel", t0, elapsed,
                {"node": node.label,
                 "nvals": getattr(cached, "nvals", None)},
            )
            return
        except Exception:
            STATS.bump("memo_fallbacks")
    if node.alias_of is not None:
        # CSE duplicate: publish the representative's carrier through
        # the same commit gate a kernel result would pass.  Any failure
        # (representative failed, commit rejected) falls back to running
        # this node's own kernel — exactly the blocking-mode outcome.
        rep, node.alias_of = node.alias_of, None
        if rep.state == DONE:
            try:
                node.result = with_retry(
                    lambda: _txn_commit(node.label, rep.result), node.label
                )
                node.state = DONE
                STATS.bump("cse_reused")
                local = _node_stats(node)
                if local is not None:
                    local.bump("cse_reused")
                STATS.span(
                    f"cse:{node.kind}", "kernel", t0,
                    time.perf_counter() - t0,
                    {"node": node.label, "rep": rep.label},
                )
                _memo_store(node)
                return
            except Exception:
                pass
        STATS.bump("cse_fallbacks")
    if node.plan is not None or node.pushed_mask is not None \
            or node.pushed_into is not None:
        try:
            node.result = _checked_evaluate(node)
            node.state = DONE
            kind = f"fused:{node.kind}" if node.plan is not None \
                else node.kind
            elapsed = time.perf_counter() - t0
            STATS.kernel(kind, elapsed)
            local = _node_stats(node)
            if local is not None:
                local.kernel(elapsed)
            STATS.span(
                kind, "kernel", t0, elapsed,
                {"node": node.label},
            )
            _memo_store(node)
        except Exception:
            # An optimized (fused and/or mask-pushed) evaluation failed.
            # Optimization must be transparent even on failure: unfused,
            # unpushed execution would have preserved every intermediate
            # state before the op that actually raises, so re-run the
            # chain node by node without the optimizations (they are
            # pure — re-running is safe) and let the normal §V machinery
            # attribute the error to the node that actually fails.
            _run_deoptimized_fallback(node)
        return
    if node.batch_key is not None and node.batch_compute is not None \
            and _run_batch(node, t0):
        return
    try:
        result = _checked_evaluate(node)
    except ExecutionError as exc:
        _record_failure(node, exc, f"{node.label}: {exc.message}")
        return
    except GraphBLASError as exc:
        # API errors are never deferred by the ops layer; one escaping a
        # kernel is still surfaced but not recorded as a deferred error.
        node.exc = exc
        node.state = FAILED
        node.result = _carrier_before(node)
        return
    except Exception as exc:  # user-defined operator blew up: §V panic
        message = (
            f"{node.label}: user-defined function raised "
            f"{type(exc).__name__}: {exc}"
        )
        wrapped = PanicError(message)
        wrapped.__cause__ = exc
        _record_failure(node, wrapped, message)
        return
    node.result = result
    node.state = DONE
    elapsed = time.perf_counter() - t0
    STATS.kernel(node.kind, elapsed)
    local = _node_stats(node)
    if local is not None:
        local.kernel(elapsed)
    STATS.span(
        node.kind, "kernel", t0, elapsed,
        {"node": node.label},
    )
    _memo_store(node)


def _run_batch(node: Node, t0: float) -> bool:
    """Coalesce *node* with its pending small-op batch peers.

    ``node`` is the group leader the scheduler happened to reach first.
    Its peers — other plain pending nodes sharing its ``batch_key``,
    i.e. independent single-vector products over the very same
    committed matrix — are claimed from the registry and run through
    one blocked multi-vector kernel, then each result passes the usual
    transactional commit gate.  Running a peer ahead of its own forcing
    is exactly the reordering freedom §III grants deferred sequences:
    the nodes are pure, their inputs are settled snapshots, and their
    owners observe only a completed result.  Returns ``False`` (and
    surrenders the peers) when there is nothing to coalesce or any part
    of the batch fails — every node then runs singly through the
    normal §V path, so batching is failure-transparent.
    """
    from ..internals import config

    if not config.ENGINE_OP_BATCH:
        return False
    from . import opbatch

    peers = opbatch.claim_peers(node)
    if not peers:
        return False
    group = [node] + peers
    try:
        carrier = node.inputs[0].resolve()
        us = [n.inputs[1].resolve() for n in group]
        ts = node.batch_compute(carrier, us)
        committed = [
            with_retry(
                lambda n=n, t=t: _txn_commit(n.label, n.writeback(None, t)),
                n.label,
            )
            for n, t in zip(group, ts)
        ]
    except Exception:
        for p in peers:
            opbatch.surrender(p)
        return False
    elapsed = time.perf_counter() - t0
    STATS.bump("batch_groups")
    STATS.bump("engine_batched_ops", len(group))
    STATS.kernel("mxv_batch", elapsed)
    STATS.span(
        "mxv_batch", "kernel", t0, elapsed,
        {"node": node.label, "batched": len(group)},
    )
    share = elapsed / len(group)
    for n, res in zip(group, committed):
        n.result = res
        n.state = DONE
        local = _node_stats(n)
        if local is not None:
            local.kernel(share)
        _memo_store(n)
    return True


def _memo_store(node: Node) -> None:
    """Record a freshly committed carrier in the owning context's
    cross-forcing memo (the planner attached the key at plan time).

    Mask-filtered producers are never stored: a pushed result holds a
    subset of the true value and must not be served to an unmasked
    resubmission.  The store is best-effort — a failure here can't be
    allowed to fail a forcing that already committed."""
    entry, node.memo_entry = node.memo_entry, None
    if entry is None or node.pushed_mask is not None:
        return
    from ..internals import config

    if not config.ENGINE_MEMO:
        return
    try:
        ctx = getattr(node.owner, "_ctx", None)
        if ctx is None:
            return
        memo = ctx.result_memo()
        if memo is None:
            return
        key, deps = entry
        from .passes import cost

        memo.store(key, node.result, deps,
                   owner_uid=getattr(node.owner, "_uid", None),
                   cost_ms=cost.entry_savings_ms(node),
                   estimated=True)
    except Exception:
        pass


def _run_deoptimized_fallback(node: Node) -> None:
    """Re-execute a failed optimized chain without its optimizations.

    The absorbed/filtered producers flip back to PENDING and run
    standalone in dependency order; dependent-failure propagation then
    reproduces the exact unoptimized outcome — every node before the
    failing one leaves its result for the pre-failure carrier walk, and
    the failing node gets the error recorded under its own label.  For a
    pushed chain this also restores the §V pre-failure state: blocking
    mode would have left the producer's *unfiltered* result behind, so
    the producer re-runs with the mask filter stripped.
    """
    plan, node.plan = node.plan, None
    chain: list[Node] = list(plan.chain) if plan is not None else []
    producer, node.pushed_into = node.pushed_into, None
    if producer is not None and producer.pushed_mask is not None:
        # The consumer of a pushed mask failed: the producer's committed
        # result is mask-filtered, which blocking mode would never have
        # produced.  Strip the filter and recompute it clean.
        producer.pushed_mask = None
        if producer not in chain:
            chain.insert(0, producer)
        STATS.bump("pushdown_fallbacks")
    if node.pushed_mask is not None:
        # This node *is* a pushed producer whose filtered run failed.
        node.pushed_mask = None
        STATS.bump("pushdown_fallbacks")
    for x in chain:
        x.state = PENDING
    for x in chain:
        _run_node(x)
    _run_node(node)


def _record_failure(node: Node, exc: BaseException, message: str) -> None:
    if node.owner is not None:
        node.owner._err = message
    STATS.bump("errors_deferred")
    local = _node_stats(node)
    if local is not None:
        local.bump("errors_deferred")
    node.exc = exc
    node.state = FAILED
    node.result = _carrier_before(node)


def _carrier_before(node: Node):
    """Pre-failure state: what the owner held before this node ran."""
    src = node.prev
    while src.node is not None and src.node.state == ELIDED:
        src = src.node.prev
    if src.node is None:
        return src.data
    return src.node.result


def _checked_evaluate(node: Node):
    """Evaluate a node as a *transaction*: the kernel runs inside the
    transient-fault retry envelope and its scratch result must pass the
    commit gate (:mod:`repro.engine.txn`) before it is published as the
    node's result.  Kernels are pure over immutable carriers, so a
    retried evaluation is indistinguishable from a first run."""
    return with_retry(
        lambda: _txn_commit(node.label, _evaluate(node)), node.label
    )


def _run_compute(node: Node, datas: list):
    """Invoke a compute-form node's kernel closure, threading through a
    planner-pushed mask filter when one was attached (the kernel then
    discards off-mask products before its sort/compress phase)."""
    if node.pushed_mask is not None:
        mask_src, complement, structure = node.pushed_mask
        mask_data = mask_src.resolve()
        if isinstance(mask_data, VecData):
            keys = vec_mask_keys(mask_data, structure)
        else:
            keys = mat_mask_keys(mask_data, structure)
        return node.compute(datas, pushed_keys=keys, pushed_comp=complement)
    return node.compute(datas)


def _evaluate(node: Node):
    if node.thunk is not None:
        return node.thunk(_resolve_prev(node))
    plan = node.plan
    if plan is not None:
        if plan.head is not None:
            t = _run_compute(
                plan.head, [s.resolve() for s in plan.head.inputs]
            )
        else:
            t = plan.start.resolve()
        t = run_stages(t, plan.stages)
    elif node.stages is not None:
        t = run_stages(node.inputs[node.pipe_input].resolve(), node.stages)
    else:
        t = _run_compute(node, [s.resolve() for s in node.inputs])
    prev = None if node.pure else _resolve_prev(node)
    return node.writeback(prev, t)

"""Engine observability: counters, per-kernel wall time, trace spans.

The lazy engine's whole value proposition — defer, fuse, elide, share,
run independent work concurrently — is invisible from the API surface,
so the engine keeps a process-wide counter block that answers "did the
optimizer actually do anything?".  Counters:

* ``nodes_built``      — DAG nodes created (one per deferred method).
* ``nodes_forced``     — nodes whose kernel actually ran.
* ``nodes_fused``      — producer nodes absorbed into a consumer's
  fused pipeline (their standalone kernel + write-back never ran).
* ``chains_fused``     — fused pipelines constructed (≥1 absorption).
* ``transposes_elided``— transpose pairs cancelled inside a pipeline.
* ``selects_hoisted``  — value-independent selects moved ahead of maps
  (filter-before-map: the map then touches fewer stored values).
* ``cse_hits``         — pending nodes recognised as structurally
  identical to an earlier node (hash-cons pass) and aliased to it.
* ``cse_reused``       — aliases that actually published the shared
  result (the duplicate kernel never ran).
* ``cse_fallbacks``    — aliases whose representative failed (or whose
  commit was rejected) and that re-ran their own kernel instead.
* ``masks_pushed``     — masked consumers whose mask filter was pushed
  into the producing mxm/mxv/vxm/eWiseMult kernel (pushdown pass).
* ``pushdown_fallbacks`` — pushed chains that failed and transparently
  re-ran unpushed for exact §V state.
* ``memo_hits`` / ``memo_misses`` — cross-forcing result-memo lookups
  (CSE pass) that found / did not find a committed carrier for a
  re-submitted expression.
* ``memo_reused``      — memo hits that actually republished the cached
  carrier through the commit gate (the kernel never ran).
* ``memo_fallbacks``   — memo hits whose republish was rejected (commit
  gate) and that re-ran their own kernel instead.
* ``memo_stores``      — committed results recorded into a context's
  result memo for later forcings.
* ``memo_evictions``   — evictions from a full result memo (the victim
  is the LRU entry or the lowest cost-score entry, per
  ``MEMO_EVICTION``; each eviction emits a ``memo:evict`` instant).
* ``memo_admission_skips`` — expression stores rejected by the
  cost-model admission gate (``MEMO_ADMISSION``): the estimated rebuild
  savings were below the measured commit overhead, so caching would
  cost more than recomputing.
* ``memo_invalidations`` — memo entries dropped because an input handle
  advanced (write) or was freed.
* ``algo_memo_hits`` / ``algo_memo_misses`` — algorithm building-block
  lookups (pattern matrices, degree vectors, …) served from / absent
  from the context's result memo.
* ``algo_memo_stores`` — building blocks materialized and recorded for
  later algorithm calls.
* ``algo_memo_fallbacks`` — cached building blocks whose republish was
  rejected at the commit gate and that were rebuilt instead.
* ``cost_decisions``   — pushdown-vs-fusion conflicts arbitrated by the
  cost model (each also emits a ``cost:`` trace instant).
* ``cost_fusions_skipped`` — fusions vetoed by the adaptive cost model
  because the measured per-chain plan bookkeeping exceeded the
  estimated saving (tiny producers ran standalone).
* ``cost_partition_decisions`` — SpGEMM row-partition counts chosen by
  the per-context measured-scaling model instead of the static
  ``nthreads`` split.
* ``planner_pass_failures`` — planner passes skipped after an injected
  or real fault (the forcing proceeds without that pass's rewrites).
* ``forces``           — subgraph forcings (``wait``/read/input use).
* ``completes_deferred`` — ``wait(COMPLETE)`` calls that legally left a
  fused-but-unforced sequence in place (§V deferral freedom).
* ``parallel_batches`` / ``parallel_nodes`` — scheduler dispatches that
  ran ≥2 independent ready nodes concurrently, and how many nodes.
* ``errors_deferred``  — execution errors recorded during a forcing.
* ``faults_injected``  — faults fired by the injection plane
  (:mod:`repro.faults`).
* ``retries`` / ``retries_recovered`` / ``retries_exhausted`` —
  transient-fault retry attempts, operations that succeeded after ≥1
  retry, and operations that burned the whole retry budget.
* ``worker_faults``    — simulated engine-pool node failures absorbed
  by re-running the node on the dispatcher thread.
* ``degraded_serial``  — parallel batch paths that fell back to serial
  execution after persistent faults.
* ``degraded_local``   — distributed ops that fell back to
  single-process execution on an unhealthy cluster.
* ``comm_timeouts``    — communicator receives/collectives that timed
  out (dead-rank detection).
* ``serve_submitted`` / ``serve_completed`` / ``serve_rejected`` —
  serving-layer queries admitted, finished, and shed by admission
  control (:mod:`repro.serve`).
* ``serve_batches`` / ``serve_batched_queries`` — coalesced
  multi-source submissions the serving batcher formed, and how many
  client queries rode in them.
* ``format_dcsr_commits`` — matrix commits the format policy packed
  (or kept) doubly-compressed (hypersparse DCSR tier); each repack
  emits a ``cost:format`` instant with the shape and decision.
* ``format_densify_fallbacks`` — hypersparse carriers densified to CSR
  for a kernel family with no native DCSR path (each emits a
  ``format:densify:<family>`` instant with the conversion time).
* ``memo_delta_patches`` / ``memo_delta_drops`` — dependent memo
  entries updated *in place* from a batched write's delta (patch rule
  applied, entry re-keyed at the new handle version; each patched
  handle emits a ``memo:patch`` instant) vs dropped the classic way
  (no rule, wrong version, or the cost model preferred a rebuild).
* ``algo_warm_hits`` / ``algo_warm_stores`` / ``algo_warm_fallbacks``
  — warm-fixpoint blocks (prior pagerank ranks, component labels,
  triangle counts) served to an incremental algorithm run, recorded
  after a converged run, and warm entries that failed to apply (the
  algorithm recomputed cold).
* ``ingest_batches`` / ``ingest_edges_committed`` — streaming-ingest
  flushes (one merged ``apply_edges`` + one coalesced journal record
  + one publish each) and the edges they committed.
* ``ingest_fast_merges`` — batched edge writes applied by the sorted
  positional merge in :mod:`repro.internals.stream` (O(nnz + d log d))
  instead of the full COO re-sort.
* ``serve_views_patched`` — stale cached tenant views advanced to the
  current graph generation by replaying recorded deltas in place
  (handle identity preserved, so warm blocks survive the write).
* ``batch_groups`` / ``engine_batched_ops`` — small-op batches the
  scheduler coalesced into one blocked multi-vector kernel, and how
  many pending ops rode in them (the ops saved kernel entries, row
  expansions, and per-op commit bookkeeping).
* ``spans_dropped``    — trace spans discarded after the in-memory
  buffer filled (the counters above are never dropped).

Per-context rollups
-------------------

The block above is process-wide; the serving layer additionally needs
"what did *this tenant* consume?".  :class:`ContextStats` is the
per-:class:`~repro.core.context.Context` counterpart — a small
lock-guarded counter block the scheduler attributes kernel time and
reuse events to, keyed by the owning object's context.  It is created
lazily (``Context.local_stats()``) so non-serving workloads pay one
``None`` check and nothing else.

Per-kernel timing lives in ``kernel_time``/``kernel_count`` keyed by
node kind (``mxm``, ``apply``, ``fused:…``).  Query via
:meth:`EngineStats.snapshot`, :meth:`repro.core.context.Context.engine_stats`,
or the CLI's ``--engine-stats`` flag.

Trace spans
-----------

Every planner pass and every executed kernel records a span (name,
category, start, duration, thread); planner *decisions* (a CSE alias, a
pushed mask, a fused chain) record instant events.  The buffer renders
to the Chrome trace event format — ``{"traceEvents": [...]}`` with
``ph="X"`` complete events in microseconds — so ``chrome://tracing`` or
Perfetto can load a dump directly.  ``Context.engine_stats(
include_spans=True)`` returns the events; the CLI's ``--trace-out
PATH`` writes the JSON file.
"""

from __future__ import annotations

import json
import threading
import time

__all__ = [
    "EngineStats", "ContextStats", "STATS", "SPAN_CAP",
    "register_reset_hook",
]

#: Callables invoked after :meth:`EngineStats.reset` — modules keeping
#: calibration state *derived from* these counters (the cost model's
#: estimate accumulators) register here so a stats reset cannot leave
#: their numerator/denominator pairs inconsistent.
_RESET_HOOKS: list = []


def register_reset_hook(fn) -> None:
    _RESET_HOOKS.append(fn)

_COUNTERS = (
    "nodes_built",
    "nodes_forced",
    "nodes_fused",
    "chains_fused",
    "transposes_elided",
    "selects_hoisted",
    "cse_hits",
    "cse_reused",
    "cse_fallbacks",
    "masks_pushed",
    "pushdown_fallbacks",
    "memo_hits",
    "memo_misses",
    "memo_reused",
    "memo_fallbacks",
    "memo_stores",
    "memo_evictions",
    "memo_admission_skips",
    "memo_invalidations",
    "algo_memo_hits",
    "algo_memo_misses",
    "algo_memo_stores",
    "algo_memo_fallbacks",
    "cost_decisions",
    "cost_fusions_skipped",
    "cost_partition_decisions",
    "planner_pass_failures",
    "forces",
    "completes_deferred",
    "parallel_batches",
    "parallel_nodes",
    "errors_deferred",
    "faults_injected",
    "retries",
    "retries_recovered",
    "retries_exhausted",
    "worker_faults",
    "degraded_serial",
    "degraded_local",
    "comm_timeouts",
    "serve_submitted",
    "serve_completed",
    "serve_rejected",
    "serve_batches",
    "serve_batched_queries",
    "serve_timeouts",
    "serve_shutdown_rejected",
    "cancel_stops",
    "breaker_open_rejected",
    "breaker_trips",
    "breaker_probes",
    "breaker_recoveries",
    "journal_appends",
    "journal_replayed",
    "checkpoints_written",
    "restores",
    "restored_graphs",
    "restored_blocks",
    "format_dcsr_commits",
    "format_densify_fallbacks",
    "memo_delta_patches",
    "memo_delta_drops",
    "algo_warm_hits",
    "algo_warm_stores",
    "algo_warm_fallbacks",
    "store_hits",
    "store_misses",
    "store_stores",
    "store_corrupt",
    "store_evictions",
    "store_admission_skips",
    "ingest_batches",
    "ingest_edges_committed",
    "ingest_fast_merges",
    "serve_views_patched",
    "batch_groups",
    "engine_batched_ops",
    "spans_dropped",
)

#: Counters a :class:`ContextStats` rollup tracks per context/tenant.
CTX_COUNTERS = (
    "kernels",
    "memo_reused",
    "cse_reused",
    "algo_memo_hits",
    "errors_deferred",
    "worker_faults",
    "queries_submitted",
    "queries_completed",
    "queries_rejected",
    "queries_batched",
    "queries_failed",
    "queries_timeout",
)

#: Trace-span buffer bound; past it spans are counted in
#: ``spans_dropped`` instead of stored (counters are never dropped).
SPAN_CAP = 50_000

#: Process start reference for trace timestamps (µs since this moment).
_T0 = time.perf_counter()


class EngineStats:
    """Thread-safe counter + span block (process-wide singleton)."""

    __slots__ = (
        "_lock", "kernel_time", "kernel_count", "_spans", "_threads",
    ) + _COUNTERS

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.kernel_time: dict[str, float] = {}
        self.kernel_count: dict[str, int] = {}
        self._spans: list[dict] = []
        self._threads: dict[int, tuple[int, str]] = {}  # ident -> (tid, name)
        for name in _COUNTERS:
            setattr(self, name, 0)

    # -- recording -----------------------------------------------------------

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def kernel(self, kind: str, seconds: float) -> None:
        """Record one executed kernel of *kind* taking *seconds*."""
        with self._lock:
            self.nodes_forced += 1
            self.kernel_time[kind] = self.kernel_time.get(kind, 0.0) + seconds
            self.kernel_count[kind] = self.kernel_count.get(kind, 0) + 1

    def _tid(self) -> int:
        # Caller holds self._lock.
        th = threading.current_thread()
        entry = self._threads.get(th.ident)
        if entry is None:
            entry = (len(self._threads), th.name)
            self._threads[th.ident] = entry
        return entry[0]

    def span(
        self, name: str, cat: str, start: float, duration: float,
        args: dict | None = None,
    ) -> None:
        """Record a complete ("X") trace event.

        *start* is a ``time.perf_counter()`` reading; *duration* is in
        seconds.  Event timestamps are microseconds relative to engine
        start, which is what the Chrome trace format expects.
        """
        with self._lock:
            if len(self._spans) >= SPAN_CAP:
                self.spans_dropped += 1
                return
            self._spans.append({
                "name": name, "cat": cat, "ph": "X",
                "ts": (start - _T0) * 1e6, "dur": max(duration, 0.0) * 1e6,
                "pid": 1, "tid": self._tid(), "args": args or {},
            })

    def instant(self, name: str, cat: str, args: dict | None = None) -> None:
        """Record an instant ("i") event — a point-in-time decision."""
        with self._lock:
            if len(self._spans) >= SPAN_CAP:
                self.spans_dropped += 1
                return
            self._spans.append({
                "name": name, "cat": cat, "ph": "i", "s": "t",
                "ts": (time.perf_counter() - _T0) * 1e6,
                "pid": 1, "tid": self._tid(), "args": args or {},
            })

    # -- querying ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A point-in-time copy of every counter (safe to mutate)."""
        with self._lock:
            snap = {name: getattr(self, name) for name in _COUNTERS}
            snap["kernel_time"] = dict(self.kernel_time)
            snap["kernel_count"] = dict(self.kernel_count)
            snap["spans_recorded"] = len(self._spans)
            return snap

    def trace_events(self) -> list[dict]:
        """The recorded spans as Chrome trace events (copy), prefixed
        with thread-name metadata so viewers label the tracks."""
        with self._lock:
            meta = [
                {
                    "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                    "args": {"name": name},
                }
                for tid, name in sorted(self._threads.values())
            ]
            return meta + [dict(ev) for ev in self._spans]

    def write_trace(self, path: str) -> int:
        """Dump the span buffer as a Chrome-trace JSON file; returns the
        number of events written (metadata rows excluded)."""
        events = self.trace_events()
        with open(path, "w") as fh:
            json.dump(
                {"traceEvents": events, "displayTimeUnit": "ms"},
                fh, default=str,
            )
        return sum(1 for ev in events if ev.get("ph") != "M")

    def reset(self) -> None:
        with self._lock:
            for name in _COUNTERS:
                setattr(self, name, 0)
            self.kernel_time.clear()
            self.kernel_count.clear()
            self._spans.clear()
            self._threads.clear()
        for hook in _RESET_HOOKS:
            try:
                hook()
            except Exception:
                pass

    def format(self) -> str:
        """Human-readable dump (used by ``repro --engine-stats``)."""
        snap = self.snapshot()
        lines = ["engine stats:"]
        for name in _COUNTERS:
            lines.append(f"  {name:<22} {snap[name]}")
        if snap["kernel_count"]:
            lines.append("  kernel wall time:")
            for kind in sorted(snap["kernel_count"]):
                t = snap["kernel_time"].get(kind, 0.0) * 1e3
                n = snap["kernel_count"][kind]
                lines.append(f"    {kind:<16} {n:>6} calls  {t:>9.2f} ms")
        return "\n".join(lines)


class ContextStats:
    """Per-context tenant rollup of engine activity.

    Every mutation takes the instance lock — concurrent serving
    sessions bump these from scheduler worker threads, so a bare
    ``+=`` on instance attributes would lose updates.
    """

    __slots__ = ("_lock", "kernel_seconds") + CTX_COUNTERS

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.kernel_seconds = 0.0
        for name in CTX_COUNTERS:
            setattr(self, name, 0)

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def kernel(self, seconds: float) -> None:
        """Attribute one executed kernel of *seconds* to this context."""
        with self._lock:
            self.kernels += 1
            self.kernel_seconds += seconds

    def snapshot(self) -> dict:
        with self._lock:
            snap = {name: getattr(self, name) for name in CTX_COUNTERS}
            snap["kernel_time_ms"] = self.kernel_seconds * 1e3
            return snap


#: The process-wide engine stats block.
STATS = EngineStats()

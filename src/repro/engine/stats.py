"""Engine observability: counters and per-kernel wall time (§III/§V).

The lazy engine's whole value proposition — defer, fuse, elide, run
independent work concurrently — is invisible from the API surface, so
the engine keeps a process-wide counter block that answers "did the
optimizer actually do anything?".  Counters:

* ``nodes_built``      — DAG nodes created (one per deferred method).
* ``nodes_forced``     — nodes whose kernel actually ran.
* ``nodes_fused``      — producer nodes absorbed into a consumer's
  fused pipeline (their standalone kernel + write-back never ran).
* ``chains_fused``     — fused pipelines constructed (≥1 absorption).
* ``transposes_elided``— transpose pairs cancelled inside a pipeline.
* ``selects_hoisted``  — value-independent selects moved ahead of maps
  (filter-before-map: the map then touches fewer stored values).
* ``forces``           — subgraph forcings (``wait``/read/input use).
* ``completes_deferred`` — ``wait(COMPLETE)`` calls that legally left a
  fused-but-unforced sequence in place (§V deferral freedom).
* ``parallel_batches`` / ``parallel_nodes`` — scheduler dispatches that
  ran ≥2 independent ready nodes concurrently, and how many nodes.
* ``errors_deferred``  — execution errors recorded during a forcing.
* ``faults_injected``  — faults fired by the injection plane
  (:mod:`repro.faults`).
* ``retries`` / ``retries_recovered`` / ``retries_exhausted`` —
  transient-fault retry attempts, operations that succeeded after ≥1
  retry, and operations that burned the whole retry budget.
* ``worker_faults``    — simulated engine-pool node failures absorbed
  by re-running the node on the dispatcher thread.
* ``degraded_serial``  — parallel batch paths that fell back to serial
  execution after persistent faults.
* ``degraded_local``   — distributed ops that fell back to
  single-process execution on an unhealthy cluster.
* ``comm_timeouts``    — communicator receives/collectives that timed
  out (dead-rank detection).

Per-kernel timing lives in ``kernel_time``/``kernel_count`` keyed by
node kind (``mxm``, ``apply``, ``fused``…).  Query via
:meth:`EngineStats.snapshot`, :meth:`repro.core.context.Context.engine_stats`,
or the CLI's ``--engine-stats`` flag.
"""

from __future__ import annotations

import threading

__all__ = ["EngineStats", "STATS"]

_COUNTERS = (
    "nodes_built",
    "nodes_forced",
    "nodes_fused",
    "chains_fused",
    "transposes_elided",
    "selects_hoisted",
    "forces",
    "completes_deferred",
    "parallel_batches",
    "parallel_nodes",
    "errors_deferred",
    "faults_injected",
    "retries",
    "retries_recovered",
    "retries_exhausted",
    "worker_faults",
    "degraded_serial",
    "degraded_local",
    "comm_timeouts",
)


class EngineStats:
    """Thread-safe counter block for one engine (process-wide singleton)."""

    __slots__ = ("_lock", "kernel_time", "kernel_count") + _COUNTERS

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.kernel_time: dict[str, float] = {}
        self.kernel_count: dict[str, int] = {}
        for name in _COUNTERS:
            setattr(self, name, 0)

    # -- recording -----------------------------------------------------------

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def kernel(self, kind: str, seconds: float) -> None:
        """Record one executed kernel of *kind* taking *seconds*."""
        with self._lock:
            self.nodes_forced += 1
            self.kernel_time[kind] = self.kernel_time.get(kind, 0.0) + seconds
            self.kernel_count[kind] = self.kernel_count.get(kind, 0) + 1

    # -- querying ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A point-in-time copy of every counter (safe to mutate)."""
        with self._lock:
            snap = {name: getattr(self, name) for name in _COUNTERS}
            snap["kernel_time"] = dict(self.kernel_time)
            snap["kernel_count"] = dict(self.kernel_count)
            return snap

    def reset(self) -> None:
        with self._lock:
            for name in _COUNTERS:
                setattr(self, name, 0)
            self.kernel_time.clear()
            self.kernel_count.clear()

    def format(self) -> str:
        """Human-readable dump (used by ``repro --engine-stats``)."""
        snap = self.snapshot()
        lines = ["engine stats:"]
        for name in _COUNTERS:
            lines.append(f"  {name:<18} {snap[name]}")
        if snap["kernel_count"]:
            lines.append("  kernel wall time:")
            for kind in sorted(snap["kernel_count"]):
                t = snap["kernel_time"].get(kind, 0.0) * 1e3
                n = snap["kernel_count"][kind]
                lines.append(f"    {kind:<16} {n:>6} calls  {t:>9.2f} ms")
        return "\n".join(lines)


#: The process-wide engine stats block.
STATS = EngineStats()

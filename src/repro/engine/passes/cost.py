"""Pass 3 — cost model: arbitrate pushdown-vs-fusion conflicts.

Mask pushdown and fusion compete for the same producers: a masked
stage-form consumer over a pending mxm can either push its key filter
into the SpGEMM kernel (off-mask products die before sort/compress) or
absorb the producer into a fused pipeline (the intermediate carrier is
never materialized).  The fixed ``cse → pushdown → fuse`` order always
let pushdown claim first; this pass decides per conflict by **estimated
kernel savings** instead:

* ``push_gain``  ≈ products the mask filter kills before the ESC
  sort/compress phase × the calibrated per-product cost.
* ``fuse_gain``  ≈ intermediate entries whose materialization (commit,
  cast, second pass over stored values) fusion avoids × the calibrated
  per-entry stage cost.

Work estimates are nnz-based: materialized carriers report exact nnz,
pending producers are estimated from *their* inputs (mxm via the
classic ``nnz(A)·nnz(B)/inner`` expected-products model, eWise via
intersection/union bounds).  The per-element rates are **calibrated
from observed kernel spans**: :mod:`repro.engine.stats` already records
wall time per kernel kind, and this pass feeds back its own estimates,
so the ratio ``observed ms / estimated elements`` tracks the machine
the process actually runs on (falling back to static rates until both
kernels have been seen).

The pass only *advises*: winners land in ``ir.decisions`` (producer id
→ ``"pushdown"`` | ``"fuse"``), the pushdown pass skips producers
decided ``"fuse"`` (fusion then absorbs them normally), and every
decision emits a ``cost:`` trace instant with both estimates — so
``--trace-out`` shows *why* a producer was pushed into vs fused.  A
skipped or disabled cost pass (``ENGINE_COSTMODEL=0``) degrades to the
fixed order.

Beyond the arbitration, the same calibrated model now drives three more
decisions:

* **memo entry scoring** (:func:`entry_savings_ms`) — what a result-memo
  hit on a node would save, feeding the cost-weighted eviction policy
  in :mod:`repro.engine.memo`.
* **adaptive fusion veto** (``COST_ADAPTIVE_FUSION``) — the planner
  driver reports how long the fuse pass spends per constructed chain
  (:func:`record_plan_overhead`); once that is measured, a producer
  whose estimated fusion saving is a small fraction of the per-chain
  bookkeeping is decided ``"nofuse"`` and runs standalone.  No static
  prior: until a chain has actually been built (and timed) in this
  stats epoch, nothing is vetoed.
* **adaptive SpGEMM partitioning** (``COST_ADAPTIVE_PARTITIONS``) —
  :func:`partition_count` picks the row-block count for
  ``internals/parallel.py`` per context from measured throughput
  (elements/second) of previous splits, exploring the power-of-two
  ladder below ``nthreads`` before settling on the best observed.
"""

from __future__ import annotations

import threading

from ...internals import config
from ...internals.containers import (
    DcsrData,
    MatData,
    choose_mat_format,
    dcsr_from_csr,
    mat_format,
)
from ..dag import PENDING, Node
from ..stats import STATS, register_reset_hook
from .ir import PlanIR

__all__ = [
    "run", "estimate_nnz", "calibrated_rates", "entry_savings_ms",
    "record_plan_overhead", "partition_count", "record_partition_sample",
    "export_calibration", "seed_calibration",
    "export_partition_samples", "seed_partition_samples",
    "commit_format", "should_delta_patch",
]

#: Static per-element rates (ms) used until calibration has data:
#: accumulating + sorting + compressing one SpGEMM product vs pushing
#: one intermediate entry through a materialize + cast + stage pass.
#: The 5:1 prior reflects that a product pays hash/sort work while a
#: stage entry is one vectorized copy; calibration replaces both with
#: measured rates as soon as kernels of each kind have run.
_BASE_PRODUCT_MS = 5e-6
_BASE_STAGE_MS = 1e-6

#: Fusion is vetoed only when the measured per-chain bookkeeping
#: exceeds this multiple of the estimated saving — a deliberate bias
#: toward fusing, so only genuinely tiny producers run standalone.
_NOFUSE_MARGIN = 4.0

_cal_lock = threading.Lock()
#: Cumulative elements this pass estimated per bucket, matched against
#: the cumulative kernel wall time STATS records for the same kinds.
_estimated_elems = {"product": 0.0, "stage": 0.0}
#: Measured plan bookkeeping: cumulative fuse-pass wall time attributed
#: to forcings that built chains, and how many chains they built.
_plan_overhead = {"ms": 0.0, "chains": 0}
#: Per-context SpGEMM split telemetry: ctx key -> {nblocks: [elems, s]}.
_partition_samples: dict = {}
#: Warm-restart priors (checkpoint rehydration): measured rates from a
#: previous process image, used instead of the static ``_BASE_*``
#: defaults until *this* process has its own measurements.
_seeded_rates: dict = {}
#: Warm-restart partition priors: merged split-throughput samples from
#: a previous process (``nblocks -> [elems, seconds]``), consulted by
#: :func:`partition_count` under live per-context samples — so a fresh
#: process skips the explore ladder and goes straight to the split the
#: previous image found best.
_seeded_partitions: dict = {}


def _reset_calibration() -> None:
    """Stats epoch rolled over (``STATS.reset``): drop the estimate
    accumulators so the ratio against the freshly-zeroed kernel times
    stays consistent, along with the bookkeeping/split telemetry and
    any warm-restart priors."""
    with _cal_lock:
        _estimated_elems["product"] = 0.0
        _estimated_elems["stage"] = 0.0
        _plan_overhead["ms"] = 0.0
        _plan_overhead["chains"] = 0
        _partition_samples.clear()
        _seeded_rates.clear()
        _seeded_partitions.clear()


def export_calibration() -> dict:
    """The current calibrated rates, as a checkpoint-manifest payload."""
    product_ms, stage_ms = calibrated_rates()
    return {"product_ms": product_ms, "stage_ms": stage_ms}


def seed_calibration(rates: dict) -> None:
    """Install measured rates from a checkpoint as warm priors.

    Seeded rates replace the static defaults in
    :func:`calibrated_rates` until live measurements exist; a stats
    reset clears them (a new epoch starts genuinely cold).
    """
    with _cal_lock:
        for bucket in ("product_ms", "stage_ms"):
            try:
                value = float(rates.get(bucket, 0.0))
            except (TypeError, ValueError):
                continue
            if value > 0.0:
                _seeded_rates[bucket] = value


def export_partition_samples() -> dict:
    """Measured SpGEMM split throughput, merged across contexts and
    keyed by block count (JSON-portable: ``{"4": [elems, seconds]}``).

    Context keys are process-local uids, so the per-context structure
    does not survive a restart — but the *physics* (how this machine's
    throughput scales with split count) does, and that is what the
    warm-start store persists.
    """
    with _cal_lock:
        merged: dict[int, list[float]] = {}
        buckets = list(_partition_samples.values())
        buckets.append(_seeded_partitions)
        for bucket in buckets:
            for nblocks, cell in bucket.items():
                out = merged.setdefault(int(nblocks), [0.0, 0.0])
                out[0] += float(cell[0])
                out[1] += float(cell[1])
    return {str(k): [v[0], v[1]] for k, v in sorted(merged.items())}


def seed_partition_samples(samples: dict) -> None:
    """Install persisted split-throughput samples as warm priors.

    Live per-context measurements always shadow them, and a stats
    reset clears them — same contract as :func:`seed_calibration`.
    Malformed cells are skipped (the sidecar may come from any disk).
    """
    with _cal_lock:
        for key, cell in samples.items():
            try:
                nblocks = int(key)
                elems = float(cell[0])
                seconds = float(cell[1])
            except (TypeError, ValueError, IndexError, KeyError):
                continue
            if nblocks < 2 or elems <= 0.0 or seconds <= 0.0:
                continue
            _seeded_partitions[nblocks] = [elems, seconds]


register_reset_hook(_reset_calibration)


def _source_nnz(src, depth: int) -> float:
    if src is None:
        return 0.0
    if src.node is not None:
        return _node_nnz(src.node, depth)
    data = src.data
    return float(getattr(data, "nvals", 0) or 0)


def _node_nnz(node: Node, depth: int = 0) -> float:
    """Estimated output nnz of a (possibly pending) node."""
    if depth > 8:  # deep chains: stop refining, any estimate will do
        return 0.0
    if node.state != PENDING and node.result is not None:
        return float(getattr(node.result, "nvals", 0) or 0)
    ins = [_source_nnz(s, depth + 1) for s in node.inputs]
    kind = node.kind
    if kind in ("mxm", "mxv", "vxm"):
        # Expected surviving entries ≈ expected products (upper bound;
        # compression only shrinks it).
        return estimate_products(node, depth)
    if kind == "eWiseMult":
        return min(ins[:2] or [0.0])
    if kind == "eWiseAdd":
        return sum(ins[:2])
    if node.stages is not None and node.inputs:
        return _source_nnz(node.inputs[node.pipe_input], depth + 1)
    return max(ins or [0.0])


def _inner_dim(node: Node) -> float:
    a = node.inputs[0].node.result if node.inputs[0].node is not None \
        else node.inputs[0].data
    ncols = getattr(a, "ncols", None)
    if ncols is None:
        ncols = getattr(a, "size", None)
    try:
        return max(1.0, float(ncols))
    except (TypeError, ValueError):
        return 1.0


def estimate_products(node: Node, depth: int = 0) -> float:
    """Expected multiply-stream length of an mxm-family node: the
    uniform-distribution SpGEMM model ``nnz(A)·nnz(B)/inner``."""
    if len(node.inputs) < 2:
        return 0.0
    nnz_a = _source_nnz(node.inputs[0], depth + 1)
    nnz_b = _source_nnz(node.inputs[1], depth + 1)
    if not nnz_a or not nnz_b:
        return 0.0
    return max(nnz_a, nnz_b, nnz_a * nnz_b / _inner_dim(node))


def estimate_nnz(node: Node) -> float:
    """Public spelling of the per-node nnz estimate (tests, tooling)."""
    return _node_nnz(node)


def _mask_kill_fraction(mask_source, complement: bool) -> float:
    """Fraction of products the pushed filter is expected to kill."""
    data = mask_source.data if mask_source.node is None \
        else mask_source.node.result
    if data is None:
        return 0.5  # unknown: neutral prior
    nvals = float(getattr(data, "nvals", 0) or 0)
    nrows = getattr(data, "nrows", None)
    if nrows is not None:
        space = float(nrows * data.ncols)
    else:
        space = float(getattr(data, "size", 0) or 0)
    if space <= 0:
        return 0.5
    density = min(1.0, nvals / space)
    # A normal mask keeps on-mask positions (kills 1 - density); a
    # complemented mask keeps off-mask positions (kills density).
    return density if complement else 1.0 - density


def calibrated_rates() -> tuple[float, float]:
    """(ms per product, ms per stage entry), from observed kernel spans.

    ``STATS.kernel_time`` accumulates wall time per kernel kind; this
    pass accumulates the element estimates it made for the same nodes.
    Once both sides have data the ratio *is* the machine's measured
    rate; until then the static defaults stand in.
    """
    snap = STATS.snapshot()
    with _cal_lock:
        est = dict(_estimated_elems)
        seeded = dict(_seeded_rates)
    product_ms = seeded.get("product_ms", _BASE_PRODUCT_MS)
    stage_ms = seeded.get("stage_ms", _BASE_STAGE_MS)
    spgemm_ms = sum(
        snap["kernel_time"].get(k, 0.0) * 1e3
        for k in ("mxm", "mxv", "vxm")
    )
    if spgemm_ms > 0 and est["product"] > 0:
        product_ms = spgemm_ms / est["product"]
    stage_time_ms = sum(
        t * 1e3 for k, t in snap["kernel_time"].items()
        if k in ("apply", "select") or k.startswith("fused:")
    )
    if stage_time_ms > 0 and est["stage"] > 0:
        stage_ms = stage_time_ms / est["stage"]
    return product_ms, stage_ms


def _record_estimates(products: float, stage_elems: float) -> None:
    with _cal_lock:
        _estimated_elems["product"] += products
        _estimated_elems["stage"] += stage_elems


def entry_savings_ms(node: Node) -> float:
    """What a future result-memo hit on *node* is worth: the products
    its kernel would stream (mxm family) or the entries it would
    rewrite, priced at the calibrated rates.  Used as the entry's
    rebuild-cost score by the cost-weighted eviction policy."""
    try:
        product_ms, stage_ms = calibrated_rates()
        products = estimate_products(node)
        if products > 0:
            return products * product_ms
        return _node_nnz(node) * stage_ms
    except Exception:
        return 0.0


def record_plan_overhead(seconds: float, chains: int) -> None:
    """The planner driver measured the fuse pass taking *seconds* while
    constructing *chains* new fused chains (only called when > 0)."""
    with _cal_lock:
        _plan_overhead["ms"] += seconds * 1e3
        _plan_overhead["chains"] += chains


def _overhead_per_chain_ms() -> float:
    with _cal_lock:
        if _plan_overhead["chains"] < 1:
            return 0.0
        return _plan_overhead["ms"] / _plan_overhead["chains"]


def record_partition_sample(
    ctx_key: int, nblocks: int, elems: float, seconds: float,
) -> None:
    """One parallel SpGEMM finished: *nblocks*-way split pushed an
    estimated *elems* products in *seconds* on context *ctx_key*."""
    if seconds <= 0 or elems <= 0:
        return
    with _cal_lock:
        bucket = _partition_samples.setdefault(ctx_key, {})
        cell = bucket.setdefault(nblocks, [0.0, 0.0])
        cell[0] += elems
        cell[1] += seconds


def partition_count(ctx_key: int, nthreads: int, est_elems: float) -> int:
    """Row-block count for a parallel SpGEMM on context *ctx_key*.

    Explores the power-of-two ladder ``nthreads, nthreads/2, …, 2``
    (each candidate must be measured once before the model judges),
    then exploits the split with the best observed throughput.  Falls
    back to ``nthreads`` — the static policy — when adaptivity is off
    or nothing is measured yet.
    """
    nthreads = max(1, nthreads)
    if not config.COST_ADAPTIVE_PARTITIONS or nthreads <= 2:
        return nthreads
    candidates = []
    c = nthreads
    while c >= 2:
        candidates.append(c)
        if c == 2:
            break
        c = max(2, c // 2)
    with _cal_lock:
        bucket = _partition_samples.get(ctx_key, {})
        if _seeded_partitions:
            # Warm-restart priors fill unexplored rungs of the ladder
            # (a seeded process skips straight to exploit); live
            # measurements for the same split shadow them.
            merged = dict(_seeded_partitions)
            merged.update(bucket)
            bucket = merged
        for cand in candidates:
            if cand not in bucket:
                return cand  # explore: measure this split at least once
        best = max(candidates, key=lambda k: bucket[k][0] / bucket[k][1])
    if best != nthreads:
        STATS.bump("cost_partition_decisions")
        STATS.instant(
            "cost:partition", "planner",
            {"nthreads": nthreads, "chosen": best,
             "est_elems": round(est_elems, 1)},
        )
    return best


def commit_format(label: str, carrier):
    """Cost-model format decision at the transaction commit gate.

    Kernels assemble scratch carriers through the density policy
    already, but a committed matrix is the long-lived artifact iterated
    by every later forcing — so the *commit* is where the format choice
    is authoritative.  Applies :func:`~...internals.containers.
    choose_mat_format` (the calibrated density threshold behind the
    ``FORMAT_AUTO`` knob) to the carrier's final shape, repacking when
    the kernel's choice disagrees.  Deterministic in (nrows, nnz), so
    journal replay re-derives bit-identical formats.  Every repack
    emits a ``cost:format`` instant; every doubly-compressed commit
    bumps ``format_dcsr_commits``.
    """
    if not isinstance(carrier, (MatData, DcsrData)):
        return carrier
    current = mat_format(carrier)
    target = choose_mat_format(carrier.nrows, carrier.nvals)
    if target == current:
        if current == "dcsr":
            STATS.bump("format_dcsr_commits")
        return carrier
    if target == "dcsr":
        out = dcsr_from_csr(carrier)
        STATS.bump("format_dcsr_commits")
    else:
        out = carrier.to_csr()
    STATS.instant(
        f"cost:format:{label}", "planner",
        {
            "label": label,
            "nrows": carrier.nrows,
            "nvals": carrier.nvals,
            "from": current,
            "to": target,
        },
    )
    return out


def should_delta_patch(kind: str, delta_nnz: int, base_nnz: int) -> bool:
    """Patch-vs-rebuild arbitration for the memo's delta tier.

    Patching a block costs O(delta) array work under the memo lock;
    rebuilding costs a full kernel pass over the base.  The crossover
    is linear in the size ratio, so the rule is a single calibratable
    threshold (``DELTA_PATCH_LIMIT``) with an absolute floor of 16
    edges — tiny deltas always patch, even into tiny graphs.  Every
    decision emits a ``cost:delta-patch`` instant.
    """
    if not config.ENGINE_DELTA:
        return False
    limit = float(config.DELTA_PATCH_LIMIT)
    patch = float(delta_nnz) <= max(16.0, limit * float(base_nnz))
    STATS.instant(
        "cost:delta-patch", "planner",
        {"kind": kind, "delta_nnz": int(delta_nnz),
         "base_nnz": int(base_nnz),
         "decision": "patch" if patch else "rebuild"},
    )
    return patch


def _conflict_pairs(ir: PlanIR):
    """(consumer, producer, mask_info) pairs both pushdown and fusion
    could claim — mirror of the two passes' legality preconditions."""
    from .fuse import _absorbable

    in_graph = {id(n) for n in ir.nodes}
    for y in ir.nodes:
        if y.state != PENDING or y.stages is None or id(y) in ir.locked:
            continue
        inf = ir.node_info(y)
        m = y.mask_info
        if inf is None or m is None or m.source is None:
            continue
        if inf.has_transpose:
            continue
        if m.source.node is not None and m.source.node.state == PENDING:
            continue
        x = y.inputs[y.pipe_input].node
        if (
            x is None
            or id(x) not in in_graph
            or id(x) in ir.locked
            or x.state != PENDING
            or not x.pushable
            or not x.pure
            or x.stages is not None
        ):
            continue
        if x.owner is not None and getattr(x.owner, "_tail", None) is x:
            continue
        if x.nrefs != y.refs_to(x):
            continue
        if y.prev.node is x and not m.replace:
            continue
        if not _absorbable(y, x):
            continue  # fusion can't take it: no conflict to arbitrate
        yield y, x, m


def _veto_tiny_fusions(ir: PlanIR, decisions: dict) -> None:
    """Decide ``"nofuse"`` for producers whose estimated fusion saving
    is dwarfed by the *measured* per-chain plan bookkeeping.

    Evidence-gated: until this stats epoch has timed the fuse pass
    building at least one chain, nothing is vetoed — so isolated
    forcings (and freshly reset test fixtures) always fuse.
    """
    from .fuse import _absorbable

    overhead_ms = _overhead_per_chain_ms()
    if overhead_ms <= 0.0:
        return
    in_graph = {id(n) for n in ir.nodes}
    _, stage_ms = calibrated_rates()
    for y in ir.nodes:
        if y.state != PENDING or y.stages is None or id(y) in ir.locked:
            continue
        x = y.inputs[y.pipe_input].node
        if (
            x is None
            or id(x) not in in_graph
            or id(x) in ir.locked
            or id(x) in decisions
            or not _absorbable(y, x)
        ):
            continue
        fuse_gain = _node_nnz(x) * stage_ms
        if fuse_gain * _NOFUSE_MARGIN >= overhead_ms:
            continue
        decisions[id(x)] = "nofuse"
        STATS.bump("cost_fusions_skipped")
        STATS.instant(
            f"cost:nofuse:{x.label}", "planner",
            {
                "producer": x.label, "consumer": y.label,
                "fuse_gain_ms": round(fuse_gain, 6),
                "plan_overhead_ms": round(overhead_ms, 6),
            },
        )


def run(ir: PlanIR) -> PlanIR:
    if not config.ENGINE_COSTMODEL:
        return ir
    decisions = dict(ir.decisions)
    if config.COST_ADAPTIVE_FUSION and config.ENGINE_FUSION:
        _veto_tiny_fusions(ir, decisions)
    if not (config.ENGINE_PUSHDOWN and config.MASK_PUSHDOWN
            and config.ENGINE_FUSION):
        # Only one contender enabled: nothing to arbitrate.
        if len(decisions) == len(ir.decisions):
            return ir
        return ir.replace(decisions=decisions)
    for y, x, m in _conflict_pairs(ir):
        if decisions.get(id(x)) == "nofuse":
            continue  # already vetoed: pushdown may still claim it
        products = estimate_products(x)
        out_nnz = _node_nnz(x)
        kill = _mask_kill_fraction(m.source, m.complement)
        product_ms, stage_ms = calibrated_rates()
        push_gain = products * kill * product_ms
        fuse_gain = out_nnz * stage_ms
        winner = "pushdown" if push_gain >= fuse_gain else "fuse"
        decisions[id(x)] = winner
        _record_estimates(products, out_nnz)
        STATS.bump("cost_decisions")
        STATS.instant(
            f"cost:{x.label}", "planner",
            {
                "producer": x.label, "consumer": y.label,
                "est_products": round(products, 1),
                "est_out_nnz": round(out_nnz, 1),
                "mask_kill_fraction": round(kill, 4),
                "push_gain_ms": round(push_gain, 6),
                "fuse_gain_ms": round(fuse_gain, 6),
                "decision": winner,
            },
        )
    if len(decisions) == len(ir.decisions):
        return ir
    return ir.replace(decisions=decisions)

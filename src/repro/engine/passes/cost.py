"""Pass 3 — cost model: arbitrate pushdown-vs-fusion conflicts.

Mask pushdown and fusion compete for the same producers: a masked
stage-form consumer over a pending mxm can either push its key filter
into the SpGEMM kernel (off-mask products die before sort/compress) or
absorb the producer into a fused pipeline (the intermediate carrier is
never materialized).  The fixed ``cse → pushdown → fuse`` order always
let pushdown claim first; this pass decides per conflict by **estimated
kernel savings** instead:

* ``push_gain``  ≈ products the mask filter kills before the ESC
  sort/compress phase × the calibrated per-product cost.
* ``fuse_gain``  ≈ intermediate entries whose materialization (commit,
  cast, second pass over stored values) fusion avoids × the calibrated
  per-entry stage cost.

Work estimates are nnz-based: materialized carriers report exact nnz,
pending producers are estimated from *their* inputs (mxm via the
classic ``nnz(A)·nnz(B)/inner`` expected-products model, eWise via
intersection/union bounds).  The per-element rates are **calibrated
from observed kernel spans**: :mod:`repro.engine.stats` already records
wall time per kernel kind, and this pass feeds back its own estimates,
so the ratio ``observed ms / estimated elements`` tracks the machine
the process actually runs on (falling back to static rates until both
kernels have been seen).

The pass only *advises*: winners land in ``ir.decisions`` (producer id
→ ``"pushdown"`` | ``"fuse"``), the pushdown pass skips producers
decided ``"fuse"`` (fusion then absorbs them normally), and every
decision emits a ``cost:`` trace instant with both estimates — so
``--trace-out`` shows *why* a producer was pushed into vs fused.  A
skipped or disabled cost pass (``ENGINE_COSTMODEL=0``) degrades to the
fixed order.
"""

from __future__ import annotations

import threading

from ...internals import config
from ..dag import PENDING, Node
from ..stats import STATS
from .ir import PlanIR

__all__ = ["run", "estimate_nnz", "calibrated_rates"]

#: Static per-element rates (ms) used until calibration has data:
#: accumulating + sorting + compressing one SpGEMM product vs pushing
#: one intermediate entry through a materialize + cast + stage pass.
#: The 5:1 prior reflects that a product pays hash/sort work while a
#: stage entry is one vectorized copy; calibration replaces both with
#: measured rates as soon as kernels of each kind have run.
_BASE_PRODUCT_MS = 5e-6
_BASE_STAGE_MS = 1e-6

_cal_lock = threading.Lock()
#: Cumulative elements this pass estimated per bucket, matched against
#: the cumulative kernel wall time STATS records for the same kinds.
_estimated_elems = {"product": 0.0, "stage": 0.0}


def _source_nnz(src, depth: int) -> float:
    if src is None:
        return 0.0
    if src.node is not None:
        return _node_nnz(src.node, depth)
    data = src.data
    return float(getattr(data, "nvals", 0) or 0)


def _node_nnz(node: Node, depth: int = 0) -> float:
    """Estimated output nnz of a (possibly pending) node."""
    if depth > 8:  # deep chains: stop refining, any estimate will do
        return 0.0
    if node.state != PENDING and node.result is not None:
        return float(getattr(node.result, "nvals", 0) or 0)
    ins = [_source_nnz(s, depth + 1) for s in node.inputs]
    kind = node.kind
    if kind in ("mxm", "mxv", "vxm"):
        # Expected surviving entries ≈ expected products (upper bound;
        # compression only shrinks it).
        return estimate_products(node, depth)
    if kind == "eWiseMult":
        return min(ins[:2] or [0.0])
    if kind == "eWiseAdd":
        return sum(ins[:2])
    if node.stages is not None and node.inputs:
        return _source_nnz(node.inputs[node.pipe_input], depth + 1)
    return max(ins or [0.0])


def _inner_dim(node: Node) -> float:
    a = node.inputs[0].node.result if node.inputs[0].node is not None \
        else node.inputs[0].data
    ncols = getattr(a, "ncols", None)
    if ncols is None:
        ncols = getattr(a, "size", None)
    try:
        return max(1.0, float(ncols))
    except (TypeError, ValueError):
        return 1.0


def estimate_products(node: Node, depth: int = 0) -> float:
    """Expected multiply-stream length of an mxm-family node: the
    uniform-distribution SpGEMM model ``nnz(A)·nnz(B)/inner``."""
    if len(node.inputs) < 2:
        return 0.0
    nnz_a = _source_nnz(node.inputs[0], depth + 1)
    nnz_b = _source_nnz(node.inputs[1], depth + 1)
    if not nnz_a or not nnz_b:
        return 0.0
    return max(nnz_a, nnz_b, nnz_a * nnz_b / _inner_dim(node))


def estimate_nnz(node: Node) -> float:
    """Public spelling of the per-node nnz estimate (tests, tooling)."""
    return _node_nnz(node)


def _mask_kill_fraction(mask_source, complement: bool) -> float:
    """Fraction of products the pushed filter is expected to kill."""
    data = mask_source.data if mask_source.node is None \
        else mask_source.node.result
    if data is None:
        return 0.5  # unknown: neutral prior
    nvals = float(getattr(data, "nvals", 0) or 0)
    nrows = getattr(data, "nrows", None)
    if nrows is not None:
        space = float(nrows * data.ncols)
    else:
        space = float(getattr(data, "size", 0) or 0)
    if space <= 0:
        return 0.5
    density = min(1.0, nvals / space)
    # A normal mask keeps on-mask positions (kills 1 - density); a
    # complemented mask keeps off-mask positions (kills density).
    return density if complement else 1.0 - density


def calibrated_rates() -> tuple[float, float]:
    """(ms per product, ms per stage entry), from observed kernel spans.

    ``STATS.kernel_time`` accumulates wall time per kernel kind; this
    pass accumulates the element estimates it made for the same nodes.
    Once both sides have data the ratio *is* the machine's measured
    rate; until then the static defaults stand in.
    """
    snap = STATS.snapshot()
    with _cal_lock:
        est = dict(_estimated_elems)
    product_ms = _BASE_PRODUCT_MS
    stage_ms = _BASE_STAGE_MS
    spgemm_ms = sum(
        snap["kernel_time"].get(k, 0.0) * 1e3
        for k in ("mxm", "mxv", "vxm")
    )
    if spgemm_ms > 0 and est["product"] > 0:
        product_ms = spgemm_ms / est["product"]
    stage_time_ms = sum(
        t * 1e3 for k, t in snap["kernel_time"].items()
        if k in ("apply", "select") or k.startswith("fused:")
    )
    if stage_time_ms > 0 and est["stage"] > 0:
        stage_ms = stage_time_ms / est["stage"]
    return product_ms, stage_ms


def _record_estimates(products: float, stage_elems: float) -> None:
    with _cal_lock:
        _estimated_elems["product"] += products
        _estimated_elems["stage"] += stage_elems


def _conflict_pairs(ir: PlanIR):
    """(consumer, producer, mask_info) pairs both pushdown and fusion
    could claim — mirror of the two passes' legality preconditions."""
    from .fuse import _absorbable

    in_graph = {id(n) for n in ir.nodes}
    for y in ir.nodes:
        if y.state != PENDING or y.stages is None or id(y) in ir.locked:
            continue
        inf = ir.node_info(y)
        m = y.mask_info
        if inf is None or m is None or m.source is None:
            continue
        if inf.has_transpose:
            continue
        if m.source.node is not None and m.source.node.state == PENDING:
            continue
        x = y.inputs[y.pipe_input].node
        if (
            x is None
            or id(x) not in in_graph
            or id(x) in ir.locked
            or x.state != PENDING
            or not x.pushable
            or not x.pure
            or x.stages is not None
        ):
            continue
        if x.owner is not None and getattr(x.owner, "_tail", None) is x:
            continue
        if x.nrefs != y.refs_to(x):
            continue
        if y.prev.node is x and not m.replace:
            continue
        if not _absorbable(y, x):
            continue  # fusion can't take it: no conflict to arbitrate
        yield y, x, m


def run(ir: PlanIR) -> PlanIR:
    if not config.ENGINE_COSTMODEL:
        return ir
    if not (config.ENGINE_PUSHDOWN and config.MASK_PUSHDOWN
            and config.ENGINE_FUSION):
        return ir  # only one contender enabled: nothing to arbitrate
    decisions = dict(ir.decisions)
    for y, x, m in _conflict_pairs(ir):
        products = estimate_products(x)
        out_nnz = _node_nnz(x)
        kill = _mask_kill_fraction(m.source, m.complement)
        product_ms, stage_ms = calibrated_rates()
        push_gain = products * kill * product_ms
        fuse_gain = out_nnz * stage_ms
        winner = "pushdown" if push_gain >= fuse_gain else "fuse"
        decisions[id(x)] = winner
        _record_estimates(products, out_nnz)
        STATS.bump("cost_decisions")
        STATS.instant(
            f"cost:{x.label}", "planner",
            {
                "producer": x.label, "consumer": y.label,
                "est_products": round(products, 1),
                "est_out_nnz": round(out_nnz, 1),
                "mask_kill_fraction": round(kill, 4),
                "push_gain_ms": round(push_gain, 6),
                "fuse_gain_ms": round(fuse_gain, 6),
                "decision": winner,
            },
        )
    if len(decisions) == len(ir.decisions):
        return ir
    return ir.replace(decisions=decisions)

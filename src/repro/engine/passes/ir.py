"""The shared plan IR every planner pass operates on.

A :class:`PlanIR` is a snapshot of the pending subgraph a forcing call
collected, plus the decisions the passes have accumulated so far.  The
invariants that make the pipeline safe to interrupt anywhere:

* ``nodes`` is the subgraph in topological (deps-first) order and is
  never reordered or filtered by a pass.
* Passes never mutate :class:`~repro.engine.dag.Node` objects.  All
  decisions live in the IR (``aliases``, ``pushdowns``, ``fusions``,
  ``elided``) until the terminal *schedule* pass commits them onto the
  nodes in one shot, under ``GRAPH_LOCK``.
* ``replace`` returns a new IR; the input IR stays valid.  A faulting
  pass therefore loses only its own rewrites — the driver keeps the
  previous IR and moves on (§V resilience at the planner layer).
* ``locked`` is the claim set: once a pass claims a node for one
  optimization (a CSE alias or representative, a pushdown endpoint),
  later passes must leave it alone.  Claims only grow.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..dag import Node

__all__ = ["NodeInfo", "PlanIR"]


class NodeInfo:
    """Per-node analysis facts computed by the normalize pass.

    ``key``    — structural identity (hash-consing key) or ``None``.
    ``stages`` — the node's stage list after per-node normalization
    (transpose pairs cancelled, value-independent selects hoisted), or
    ``None`` for non-stage nodes.
    """

    __slots__ = ("key", "stages", "has_transpose")

    def __init__(
        self,
        key: tuple | None,
        stages: list | None,
        has_transpose: bool,
    ):
        self.key = key
        self.stages = stages
        self.has_transpose = has_transpose


class PlanIR:
    """Immutable carrier of one forcing's planning state."""

    __slots__ = (
        "nodes", "info", "aliases", "pushdowns",
        "fusions", "elided", "locked", "stage_counts",
        "memo_hits", "memo_entries", "decisions",
    )

    def __init__(
        self,
        nodes: tuple[Node, ...],
        info: Mapping[int, NodeInfo] = (),
        aliases: Mapping[int, Node] = (),
        pushdowns: tuple = (),
        fusions: tuple = (),
        elided: frozenset[int] = frozenset(),
        locked: frozenset[int] = frozenset(),
        stage_counts: tuple[int, int] = (0, 0),
        memo_hits: Mapping[int, Any] = (),
        memo_entries: Mapping[int, tuple] = (),
        decisions: Mapping[int, str] = (),
    ):
        self.nodes = tuple(nodes)
        self.info = dict(info)
        #: id(duplicate node) -> representative Node
        self.aliases = dict(aliases)
        #: (producer, consumer, (mask Source, complement, structure))
        self.pushdowns = tuple(pushdowns)
        #: (consumer Node, FusionPlan)
        self.fusions = tuple(fusions)
        #: ids of producers absorbed into some fusion plan
        self.elided = frozenset(elided)
        #: ids claimed by an optimization; later passes must skip them
        self.locked = frozenset(locked)
        #: (selects_hoisted, transposes_elided) across fusion splices
        self.stage_counts = stage_counts
        #: id(node) -> cached carrier to republish (cross-forcing memo)
        self.memo_hits = dict(memo_hits)
        #: id(node) -> (memo key, dep uids) for the post-run store
        self.memo_entries = dict(memo_entries)
        #: id(producer) -> "pushdown" | "fuse" (cost-model arbitration)
        self.decisions = dict(decisions)

    @classmethod
    def initial(cls, nodes: list[Node]) -> "PlanIR":
        return cls(tuple(nodes))

    def replace(self, **kw: Any) -> "PlanIR":
        """A copy with the given fields replaced (the only way state
        moves between passes)."""
        fields = {
            "nodes": self.nodes, "info": self.info, "aliases": self.aliases,
            "pushdowns": self.pushdowns, "fusions": self.fusions,
            "elided": self.elided, "locked": self.locked,
            "stage_counts": self.stage_counts,
            "memo_hits": self.memo_hits,
            "memo_entries": self.memo_entries,
            "decisions": self.decisions,
        }
        fields.update(kw)
        return PlanIR(**fields)

    def node_info(self, node: Node) -> NodeInfo | None:
        return self.info.get(id(node))

"""Pass 1 — normalize: per-node canonicalization and analysis.

Rewrites each stage-form node's pipeline into canonical shape
(transpose pairs cancelled, value-independent selects hoisted ahead of
maps — both per-node-local and semantics-preserving) and records the
analysis facts later passes consume: the structural hash-consing key
and whether the pipeline still contains a transpose (which would move
the mask's coordinate space and so blocks pushdown).
"""

from __future__ import annotations

from ..dag import PENDING, structural_key
from .ir import NodeInfo, PlanIR

__all__ = ["run"]


def run(ir: PlanIR) -> PlanIR:
    from ..fusion import optimize_stages

    info: dict[int, NodeInfo] = {}
    for node in ir.nodes:
        if node.state != PENDING:
            continue
        stages = None
        has_transpose = False
        if node.stages is not None:
            stages, _, _ = optimize_stages(node.stages)
            has_transpose = any(st[0] == "transpose" for st in stages)
        info[id(node)] = NodeInfo(
            key=structural_key(node),
            stages=stages,
            has_transpose=has_transpose,
        )
    return ir.replace(info=info)

"""Pass 4 — mask/structure pushdown into producing kernels.

The write-back rule ``C⟨M, r⟩ = C ⊙ T`` never reads T's values at
positions where the (possibly complemented) mask is false: those output
positions take old-C content or are cleared.  So when a *masked
consumer*'s sole data input is a pending, pure, otherwise-unreferenced
producer that accepts a key filter, the mask's filter may run
**inside** the producing kernel — products outside the mask die before
the SpGEMM sort/compress phase (the CombBLAS masked-SpGEMM win), or
intersection entries die during the sorted-key merge, instead of being
materialized and then discarded by the write-back.

Two consumer shapes qualify:

* **stage-form** (apply/select pipelines): the mask filter pushes into
  the pipe input's producer, provided the pipeline contains no
  transpose (a transpose would move the mask into a different
  coordinate space than the producer's output).
* **compute-form eWise**: a masked ``eWiseMult`` — and the
  intersect-shaped ``eWiseAdd`` over one shared input — whose input is
  a pending pushable producer.  Filtering one input of an intersection
  filters the whole intersection (off-mask keys cannot survive the
  merge), and the write-back discards exactly those keys anyway.  The
  ops layer declares which inputs are safe coordinate spaces
  (``Node.push_targets`` excludes transposed inputs).

Legality conditions, checked per candidate pair (consumer ``y``,
producer ``x``):

* ``x`` is pushable (accepts ``mask_keys``), pure, pending, inside
  this forcing's subgraph, unclaimed by another pass, and no longer
  its owner's sequence tail (its unfiltered value can never be
  observed later — tails only advance).
* every reference to ``x`` comes from ``y`` (``x.nrefs`` equals
  ``y.refs_to(x)``), so no third party sees the filtered carrier.
* ``y``'s mask source is materialized or already-executed — pushing a
  *pending* mask would add a new dependency edge mid-plan.
* when ``y``'s sequence edge is ``x`` itself (the in-place pattern
  ``mxm(c, …); apply(c⟨m⟩, …, c)``), the consumer must REPLACE:
  without replace, write-back merges old-``c`` — which *is* ``x``'s
  unfiltered result — at mask-false positions, so filtering ``x``
  would change the outcome.
* the cost pass may have ruled the producer worth more to fusion
  (``ir.decisions[id(x)] == "fuse"``); such producers are left
  unclaimed here and absorbed by the fuse pass instead.

At most one producer is claimed per consumer (``pushed_into`` is a
scalar edge); for an eWise consumer the first legal input wins, which
is sufficient — filtering either side filters the intersection.  The
consumer keeps its full write-back; only provably-dead products are
skipped.  §V transparency: a pushed chain that fails re-runs unpushed
(scheduler ``pushdown_fallbacks``).
"""

from __future__ import annotations

from ...internals import config
from ..dag import PENDING, Node
from .ir import PlanIR

__all__ = ["run"]


def _producer_ok(ir: PlanIR, in_graph: set, locked: set,
                 y: Node, x: Node | None, m) -> bool:
    """The producer-side legality ladder shared by both consumer shapes."""
    if (
        x is None
        or id(x) not in in_graph
        or id(x) in locked
        or x.state != PENDING
        or not x.pushable
        or not x.pure
    ):
        return False
    if ir.decisions.get(id(x)) == "fuse":
        return False  # cost model: fusion gains more from this producer
    if x.owner is not None and getattr(x.owner, "_tail", None) is x:
        return False
    if x.nrefs != y.refs_to(x):
        return False
    if y.prev.node is x and not m.replace:
        return False
    return True


def run(ir: PlanIR) -> PlanIR:
    if not (config.ENGINE_PUSHDOWN and config.MASK_PUSHDOWN):
        return ir
    in_graph = {id(n) for n in ir.nodes}
    locked = set(ir.locked)
    pushdowns = list(ir.pushdowns)
    for y in ir.nodes:
        if y.state != PENDING or id(y) in locked:
            continue
        m = y.mask_info
        if m is None or m.source is None:
            continue
        if m.source.node is not None and m.source.node.state == PENDING:
            continue
        if y.stages is not None:
            # Stage-form consumer: pipe input only, no transpose stages.
            inf = ir.node_info(y)
            if inf is None or inf.has_transpose:
                continue
            candidates = (y.inputs[y.pipe_input].node,)
        elif y.push_targets:
            # Compute-form eWise consumer: any declared (untransposed)
            # input may carry the filter.
            candidates = tuple(
                y.inputs[i].node for i in y.push_targets
                if i < len(y.inputs)
            )
        else:
            continue
        for x in candidates:
            if not _producer_ok(ir, in_graph, locked, y, x, m):
                continue
            pushdowns.append((x, y, (m.source, m.complement, m.structure)))
            locked.add(id(x))
            locked.add(id(y))
            break
    if len(pushdowns) == len(ir.pushdowns):
        return ir
    return ir.replace(pushdowns=tuple(pushdowns), locked=frozenset(locked))

"""Pass 3 — mask/structure pushdown into producing kernels.

The write-back rule ``C⟨M, r⟩ = C ⊙ T`` never reads T's values at
positions where the (possibly complemented) mask is false: those output
positions take old-C content or are cleared.  So when a *masked
consumer*'s sole data input is a pending, pure, otherwise-unreferenced
mxm/mxv/vxm node, the mask's key filter may run **inside** the
producing kernel — products outside the mask die before the SpGEMM
sort/compress phase (the CombBLAS masked-SpGEMM win) instead of being
materialized and then discarded by the write-back.

Legality conditions, checked per candidate pair (consumer ``y``,
producer ``x``):

* ``x`` is pushable (an mxm-family node that accepts ``mask_keys``),
  pure, pending, inside this forcing's subgraph, unclaimed by another
  pass, and no longer its owner's sequence tail (its unfiltered value
  can never be observed later — tails only advance).
* every reference to ``x`` comes from ``y`` (``x.nrefs`` equals
  ``y.refs_to(x)``), so no third party sees the filtered carrier.
* ``y`` is a stage-form consumer whose pipeline contains no transpose
  (a transpose would move the mask into a different coordinate space
  than the producer's output).
* ``y``'s mask source is materialized or already-executed — pushing a
  *pending* mask would add a new dependency edge mid-plan.
* when ``y``'s sequence edge is ``x`` itself (the in-place pattern
  ``mxm(c, …); apply(c⟨m⟩, …, c)``), the consumer must REPLACE:
  without replace, write-back merges old-``c`` — which *is* ``x``'s
  unfiltered result — at mask-false positions, so filtering ``x``
  would change the outcome.

The consumer keeps its full write-back; only provably-dead products
are skipped.  §V transparency: a pushed chain that fails re-runs
unpushed (scheduler ``pushdown_fallbacks``).
"""

from __future__ import annotations

from ...internals import config
from ..dag import PENDING
from .ir import PlanIR

__all__ = ["run"]


def run(ir: PlanIR) -> PlanIR:
    if not (config.ENGINE_PUSHDOWN and config.MASK_PUSHDOWN):
        return ir
    in_graph = {id(n) for n in ir.nodes}
    locked = set(ir.locked)
    pushdowns = list(ir.pushdowns)
    for y in ir.nodes:
        if y.state != PENDING or y.stages is None or id(y) in locked:
            continue
        inf = ir.node_info(y)
        m = y.mask_info
        if inf is None or m is None or m.source is None:
            continue
        if inf.has_transpose:
            continue
        if m.source.node is not None and m.source.node.state == PENDING:
            continue
        x = y.inputs[y.pipe_input].node
        if (
            x is None
            or id(x) not in in_graph
            or id(x) in locked
            or x.state != PENDING
            or not x.pushable
            or not x.pure
        ):
            continue
        if x.owner is not None and getattr(x.owner, "_tail", None) is x:
            continue
        if x.nrefs != y.refs_to(x):
            continue
        if y.prev.node is x and not m.replace:
            continue
        pushdowns.append((x, y, (m.source, m.complement, m.structure)))
        locked.add(id(x))
        locked.add(id(y))
    if len(pushdowns) == len(ir.pushdowns):
        return ir
    return ir.replace(pushdowns=tuple(pushdowns), locked=frozenset(locked))

"""Pass 5 — schedule: commit the accumulated decisions onto the DAG.

The terminal pass is the single point where planning state leaves the
immutable IR and lands on the nodes the scheduler executes:

* each cross-forcing memo hit gets ``memo_result`` (the cached carrier
  to republish) and each miss gets ``memo_entry`` (the key the
  scheduler stores the committed carrier under),
* each CSE duplicate gets ``alias_of`` → its representative,
* each pushdown producer gets ``pushed_mask`` (and its consumer
  ``pushed_into``, for the failure fallback),
* each fusion consumer gets its ``plan`` and the absorbed producers
  flip to ELIDED,
* the optimizer counters and per-decision trace instants are emitted —
  here, not in the deciding passes, so a skipped schedule means the
  counters honestly report *nothing* was applied.

The mutation loop is plain attribute stores over already-built values
(nothing here allocates or calls kernels), so it cannot fail halfway in
practice; the driver's fault site fires *before* any mutation, keeping
"skip this pass" a clean no-op that degrades to unoptimized execution.
"""

from __future__ import annotations

from ..dag import ELIDED
from ..stats import STATS
from .ir import PlanIR

__all__ = ["run"]


def run(ir: PlanIR) -> PlanIR:
    by_id = {id(n): n for n in ir.nodes}
    for nid, carrier in ir.memo_hits.items():
        node = by_id[nid]
        node.memo_result = carrier
        STATS.bump("memo_hits")
        STATS.instant(
            f"memo:{node.label}", "planner",
            {"node": node.label, "nvals": getattr(carrier, "nvals", None)},
        )
    for nid, entry in ir.memo_entries.items():
        by_id[nid].memo_entry = entry
    for nid, rep in ir.aliases.items():
        node = by_id[nid]
        node.alias_of = rep
        STATS.bump("cse_hits")
        STATS.instant(
            f"cse:{node.label}", "planner",
            {"node": node.label, "rep": rep.label},
        )
    for x, y, pushed in ir.pushdowns:
        x.pushed_mask = pushed
        y.pushed_into = x
        STATS.bump("masks_pushed")
        STATS.instant(
            f"pushdown:{x.label}", "planner",
            {"producer": x.label, "consumer": y.label,
             "complement": pushed[1], "structure": pushed[2]},
        )
    for y, plan in ir.fusions:
        y.plan = plan
        STATS.bump("chains_fused")
        STATS.bump("nodes_fused", len(plan.chain))
        STATS.instant(
            f"fuse:{y.label}", "planner",
            {"consumer": y.label, "chain": [x.label for x in plan.chain]},
        )
    for node in ir.nodes:
        if id(node) in ir.elided:
            node.state = ELIDED
    hoisted, elided_t = ir.stage_counts
    if hoisted:
        STATS.bump("selects_hoisted", hoisted)
    if elided_t:
        STATS.bump("transposes_elided", elided_t)
    return ir

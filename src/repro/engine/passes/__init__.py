"""The planner's pass pipeline (§III optimization freedom, staged).

Each module here is one pass over the shared immutable :class:`~repro.
engine.passes.ir.PlanIR`:

``normalize`` → ``cse`` → ``pushdown`` → ``fuse`` → ``schedule``

Passes are pure functions ``PlanIR -> PlanIR`` (schedule excepted — it
is the single point that commits the accumulated decisions onto the DAG
nodes), so a pass that faults is simply skipped: the previous IR is
still valid and the forcing proceeds without that pass's rewrites.  The
driver lives in :mod:`repro.engine.fusion`.
"""

from __future__ import annotations

from .ir import NodeInfo, PlanIR  # noqa: F401

__all__ = ["NodeInfo", "PlanIR"]

"""Pass 2 — hash-cons common subexpression elimination.

Two pending nodes with identical structural keys (same pure operation,
same captured inputs, same output domain — see
:func:`repro.engine.dag.structural_key`) compute the same carrier, so
only the first (the *representative*) need run its kernel; every later
duplicate becomes an alias that publishes the representative's result
through the normal commit gate.  Input identities are canonicalized
through the aliases found so far, so transitive duplicates
(``f(g(a))`` vs ``f(g′(a))`` with ``g ≡ g′``) collide too.

Eligibility is deliberately narrow: pure nodes built from *built-in*
operators only (user-defined functions carry no determinism guarantee),
and never a node another pass has claimed.  Aliases and representatives
are locked against pushdown and fusion — an elided or mask-filtered
representative would no longer hold the unfiltered shared value.

§V transparency: if the representative fails, each alias falls back to
running its own kernel under its own label (the scheduler's
``cse_fallbacks`` path), which is exactly the blocking-mode outcome.
"""

from __future__ import annotations

from ...internals import config
from ..dag import PENDING, Node, structural_key
from .ir import PlanIR

__all__ = ["run"]


def run(ir: PlanIR) -> PlanIR:
    if not config.ENGINE_CSE:
        return ir
    seen: dict[tuple, Node] = {}
    aliases: dict[int, Node] = {}
    canon: dict[int, int] = {}
    for node in ir.nodes:
        if node.state != PENDING or id(node) in ir.locked:
            continue
        inf = ir.node_info(node)
        if inf is None or inf.key is None:
            continue
        key = structural_key(node, canon)
        if key is None:
            continue
        rep = seen.get(key)
        if rep is None:
            seen[key] = node
        else:
            aliases[id(node)] = rep
            canon[id(node)] = canon.get(id(rep), id(rep))
    if not aliases:
        return ir
    locked = set(ir.locked)
    for nid, rep in aliases.items():
        locked.add(nid)
        locked.add(id(rep))
    return ir.replace(aliases=aliases, locked=frozenset(locked))

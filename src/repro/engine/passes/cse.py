"""Pass 2 — hash-cons common subexpression elimination + result memo.

Two pending nodes with identical structural keys (same pure operation,
same captured inputs, same output domain — see
:func:`repro.engine.dag.structural_key`) compute the same carrier, so
only the first (the *representative*) need run its kernel; every later
duplicate becomes an alias that publishes the representative's result
through the normal commit gate.  Input identities are canonicalized
through the aliases found so far, so transitive duplicates
(``f(g(a))`` vs ``f(g′(a))`` with ``g ≡ g′``) collide too.

The same pass also consults the owning context's **cross-forcing result
memo** (:mod:`repro.engine.memo`): a node whose
:func:`~repro.engine.dag.memo_key` matches a carrier committed by an
*earlier* forcing becomes a memo hit — the scheduler republishes the
cached carrier through the commit gate and the kernel never runs.
Misses record the key so the scheduler can store the committed result
for later forcings.  Memo hits are locked exactly like CSE endpoints: a
fused-away or mask-filtered node would no longer publish the cached
(unfiltered) value.

Eligibility is deliberately narrow: pure nodes built from *built-in*
operators only (user-defined functions carry no determinism guarantee),
and never a node another pass has claimed.  Aliases and representatives
are locked against pushdown and fusion — an elided or mask-filtered
representative would no longer hold the unfiltered shared value.

§V transparency: if the representative fails, each alias falls back to
running its own kernel under its own label (the scheduler's
``cse_fallbacks`` path); a memo republish that fails the commit gate
re-runs its own kernel too (``memo_fallbacks``) — both exactly the
blocking-mode outcome.
"""

from __future__ import annotations

from ...internals import config
from ..dag import PENDING, Node, memo_key, structural_key
from .ir import PlanIR

__all__ = ["run"]


def _consult_memo(ir: PlanIR) -> tuple[dict, dict, set]:
    """Look up every eligible node in its context's result memo.

    Returns (hits: id -> carrier, entries: id -> (key, deps), locked
    additions).  Planning never *writes* the memo — stores happen in
    the scheduler after the carrier passes the commit gate.
    """
    hits: dict[int, object] = {}
    entries: dict[int, tuple] = {}
    locked: set[int] = set()
    memos: dict[int, object] = {}
    for node in ir.nodes:
        if node.state != PENDING or id(node) in ir.locked:
            continue
        ctx = getattr(node.owner, "_ctx", None)
        if ctx is None:
            continue
        keyed = memo_key(node)
        if keyed is None:
            continue
        memo = memos.get(id(ctx))
        if memo is None:
            memo = memos[id(ctx)] = ctx.result_memo()
        if memo is None:
            continue
        key, deps = keyed
        carrier = memo.lookup(key)
        if carrier is not None:
            hits[id(node)] = carrier
            locked.add(id(node))
        else:
            entries[id(node)] = (key, deps)
    return hits, entries, locked


def run(ir: PlanIR) -> PlanIR:
    if config.ENGINE_MEMO:
        memo_hits, memo_entries, memo_locked = _consult_memo(ir)
        if memo_hits or memo_entries:
            ir = ir.replace(
                memo_hits=memo_hits,
                memo_entries=memo_entries,
                locked=frozenset(set(ir.locked) | memo_locked),
            )
    if not config.ENGINE_CSE:
        return ir
    seen: dict[tuple, Node] = {}
    aliases: dict[int, Node] = {}
    canon: dict[int, int] = {}
    for node in ir.nodes:
        if node.state != PENDING or id(node) in ir.locked:
            continue
        inf = ir.node_info(node)
        if inf is None or inf.key is None:
            continue
        key = structural_key(node, canon)
        if key is None:
            continue
        rep = seen.get(key)
        if rep is None:
            seen[key] = node
        else:
            aliases[id(node)] = rep
            canon[id(node)] = canon.get(id(rep), id(rep))
    if not aliases:
        return ir
    locked = set(ir.locked)
    for nid, rep in aliases.items():
        locked.add(nid)
        locked.add(id(rep))
    return ir.replace(aliases=aliases, locked=frozenset(locked))

"""Pass 4 — fusion grouping: absorb producer chains into pipelines.

Walking consumers downstream-first, a stage-form consumer absorbs as
far upstream as legality allows: ``apply``/``select`` chains collapse
into one pass over the stored values, and a pure non-stage producer
(mxm, eWise, reduce, …) may seed the pipeline.  The spliced stage list
is re-optimized as a whole, so transpose pairs that only meet across
node boundaries cancel and value-independent selects hoist over
upstream maps.

Legality: the producer's write-back is pure, every reference to it
comes from the absorbing consumer, and it is no longer its owner's
sequence tail.  Nodes claimed by CSE, the result memo, or pushdown are
skipped — an aliased or mask-filtered node must run (or publish)
exactly its own value.  A consumer whose sequence edge *is* the
producer (the in-place ``mxm(c); apply(c⟨m⟩, …, c)`` pattern) may
absorb it only when its write-back never reads the previous value:
either the write-back is pure, or it masks with REPLACE and no
accumulator (the funnel then only needs ``prev``'s shape).  That last
shape is exactly the one mask pushdown also wants — the cost pass
arbitrates who gets the producer.

This pass only *decides*; absorbed producers are recorded in
``ir.elided`` and flipped to ELIDED by the schedule pass.
"""

from __future__ import annotations

from ..dag import PENDING, Node
from ...internals import config
from .ir import PlanIR

__all__ = ["run"]


def _prev_value_free(consumer: Node) -> bool:
    """True when the consumer's write-back never reads the previous
    *values* of its output: pure, or masked with REPLACE and no
    accumulator (the funnel then only uses ``prev`` for its shape)."""
    if consumer.pure:
        return True
    m = consumer.mask_info
    return m is not None and m.replace and not m.has_accum


def _absorbable(consumer: Node, x: Node) -> bool:
    """May *consumer* absorb producer *x*?  (Driver holds GRAPH_LOCK.)"""
    if x.state != PENDING or not x.is_fusable_producer():
        return False
    # The intermediate value must be unobservable: a later method must
    # already have overwritten the owner (tails only move forward).
    if x.owner is not None and getattr(x.owner, "_tail", None) is x:
        return False
    # Every reference to x must come from this consumer, and only via
    # the pipe input (plus the sequence edge when the consumer's
    # write-back never reads the previous value).
    allowed = 1 + (1 if consumer.prev.node is x else 0)
    if consumer.prev.node is x and not _prev_value_free(consumer):
        return False
    refs = consumer.refs_to(x)
    return refs == allowed and x.nrefs == refs


def _node_stages(ir: PlanIR, node: Node) -> list:
    inf = ir.node_info(node)
    if inf is not None and inf.stages is not None:
        return list(inf.stages)
    return list(node.stages)


def run(ir: PlanIR) -> PlanIR:
    from ..fusion import FusionPlan, optimize_stages

    if not config.ENGINE_FUSION:
        return ir
    in_graph = {id(n) for n in ir.nodes}
    locked = set(ir.locked)
    fusions = list(ir.fusions)
    elided = set(ir.elided)
    hoisted_total, elided_total = ir.stage_counts
    for y in reversed(ir.nodes):
        if (
            y.state != PENDING
            or y.stages is None
            or id(y) in locked
            or id(y) in elided
        ):
            continue
        chain: list[Node] = []
        stages = _node_stages(ir, y)
        consumer = y
        src = y.inputs[y.pipe_input]
        head: Node | None = None
        while True:
            x = src.node
            if (
                x is None
                or id(x) not in in_graph
                or id(x) in locked
                or id(x) in elided
                # Adaptive cost veto: a producer this tiny loses more
                # to plan bookkeeping than fusing it saves.
                or ir.decisions.get(id(x)) == "nofuse"
                or not _absorbable(consumer, x)
            ):
                break
            if x.stages is not None:
                chain.append(x)
                stages = _node_stages(ir, x) + [("cast", x.out_type)] + stages
                consumer = x
                src = x.inputs[x.pipe_input]
                continue
            # Non-stage pure producer (mxm, eWise, reduce, …): it
            # seeds the pipeline and the chain ends here.
            chain.append(x)
            head = x
            break
        if not chain:
            continue
        stages, hoisted, elided_t = optimize_stages(stages)
        fusions.append((y, FusionPlan(
            head, None if head is not None else src, stages,
            list(reversed(chain)),
        )))
        hoisted_total += hoisted
        elided_total += elided_t
        for x in chain:
            elided.add(id(x))
    if len(fusions) == len(ir.fusions):
        return ir
    return ir.replace(
        fusions=tuple(fusions),
        elided=frozenset(elided),
        stage_counts=(hoisted_total, elided_total),
    )

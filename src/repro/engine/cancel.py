"""Cooperative query cancellation: deadlines and client abandonment.

A :class:`CancelToken` carries an absolute deadline (and/or an explicit
cancel flag set when a client abandons its query).  The serving layer
establishes a token for the duration of one query via
:class:`cancel_scope`; the scheduler republishes the forcing thread's
token process-wide for the span of one forcing (safe because
``scheduler._EXEC_LOCK`` serializes forcings end to end, and necessary
because kernels may run on pool worker threads that never saw the
query thread's scope).

:func:`checkpoint` is the cooperative check, called at exactly the
boundaries ``faults/sites.py`` instruments — kernel entry
(``scheduler._run_node``) and planner pass entry
(``fusion.plan_subgraph``).  A tripped checkpoint raises
:class:`~repro.core.errors.TimeoutExpiredError` (``GrB_TIMEOUT``),
which is:

* **transient to the caller** — §V allows re-invocation with a fresh
  deadline to succeed;
* **never retried internally** — ``faults/retry.py`` special-cases it;
* **never a half-commit** — the raise happens before the transactional
  gate in ``engine/txn.py``, so every carrier keeps its last-committed
  value and un-run nodes simply stay PENDING (deferred, per §III).

When no token is active the checkpoint is a single attribute probe —
non-serving workloads pay essentially nothing.
"""

from __future__ import annotations

import threading
import time

from ..core.errors import ExecutionError, PanicError, TimeoutExpiredError

__all__ = [
    "CancelToken",
    "cancel_scope",
    "forcing_scope",
    "current_token",
    "checkpoint",
    "as_execution_error",
]


class CancelToken:
    """One query's cancellation state: deadline + explicit-cancel flag."""

    __slots__ = ("deadline", "label", "cancelled", "reason")

    def __init__(self, deadline: float | None = None, label: str = "query"):
        #: Absolute ``time.perf_counter()`` instant, or None (no deadline).
        self.deadline = deadline
        self.label = label
        self.cancelled = False
        self.reason = ""

    @classmethod
    def after_ms(cls, deadline_ms: float | None, label: str = "query") -> "CancelToken":
        """Token expiring *deadline_ms* from now (<= 0 or None: never)."""
        if not deadline_ms or deadline_ms <= 0:
            return cls(None, label)
        return cls(time.perf_counter() + deadline_ms / 1e3, label)

    def cancel(self, reason: str = "cancelled") -> None:
        """Flag the token (idempotent; first reason wins)."""
        if not self.cancelled:
            self.cancelled = True
            self.reason = reason

    def expired(self) -> bool:
        return self.deadline is not None \
            and time.perf_counter() >= self.deadline

    def should_stop(self) -> bool:
        return self.cancelled or self.expired()

    def remaining_s(self) -> float | None:
        """Seconds until the deadline (None: unbounded; floored at 0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.perf_counter())

    def error(self, site: str = "") -> TimeoutExpiredError:
        why = self.reason or "deadline expired"
        at = f" at {site}" if site else ""
        return TimeoutExpiredError(f"{self.label}: {why}{at} (GrB_TIMEOUT)")


# -- token plumbing -----------------------------------------------------------

_tls = threading.local()

#: The forcing thread's token, republished for pool workers while one
#: forcing runs.  Written only under ``scheduler._EXEC_LOCK``.
_active: CancelToken | None = None


def current_token() -> CancelToken | None:
    """The token governing work on this thread, if any."""
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1]
    return _active


class cancel_scope:
    """Bind *token* to the current thread for one query's dispatch.

    Nestable; ``cancel_scope(None)`` masks any enclosing token (used for
    shared batched work that must not die with one rider's deadline).
    """

    def __init__(self, token: CancelToken | None):
        self.token = token

    def __enter__(self) -> CancelToken | None:
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(self.token)
        return self.token

    def __exit__(self, *exc: object) -> bool:
        _tls.stack.pop()
        return False


class forcing_scope:
    """Republish the forcing thread's token process-wide for one forcing
    (reentrant forcings restore the previous token on exit)."""

    def __enter__(self) -> "forcing_scope":
        global _active
        self._prev = _active
        _active = current_token()
        return self

    def __exit__(self, *exc: object) -> bool:
        global _active
        _active = self._prev
        return False


def checkpoint(site: str = "") -> None:
    """Cooperative cancellation point (kernel / pass boundaries).

    Raises ``GrB_TIMEOUT`` when the governing token is cancelled or past
    its deadline; free when no token is active.
    """
    tok = current_token()
    if tok is not None and tok.should_stop():
        from .stats import STATS

        STATS.bump("cancel_stops")
        raise tok.error(site)


def as_execution_error(exc: BaseException, label: str = "query") -> ExecutionError:
    """Map cancellation-adjacent exceptions onto consistent §V codes.

    Deadline expiry and client abandonment (``asyncio.CancelledError``,
    ``TimeoutError``) become the *transient* ``GrB_TIMEOUT``; anything
    else unrecognized is a ``GrB_PANIC`` — persistent, because blind
    re-invocation of an unknown failure has no §V grounds to succeed.
    """
    import asyncio

    if isinstance(exc, ExecutionError):
        return exc
    if isinstance(exc, (asyncio.CancelledError, asyncio.TimeoutError, TimeoutError)):
        return TimeoutExpiredError(
            f"{label}: cancelled ({type(exc).__name__}) (GrB_TIMEOUT)"
        )
    wrapped = PanicError(f"{label}: {type(exc).__name__}: {exc}")
    wrapped.__cause__ = exc
    return wrapped

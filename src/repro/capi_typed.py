"""The *nonpolymorphic* C API surface: one function per method × domain.

C has no overloading, so the GraphBLAS C API defines typed variants
like ``GrB_Matrix_setElement_FP64`` and ``GrB_Vector_extractElement_INT32``
— §VI's first argument for ``GrB_Scalar`` is precisely that these
variants "significantly reduce in number" once the scalar argument is
an opaque object.  This module generates the typed surface faithfully
so that (a) C-shaped programs port verbatim and (b) the §VI variant
count is a measurable fact (see ``variant_census`` and the T1/T2
conformance tests).

Each typed function *enforces* its domain the way C's type system
would: passing a value that cannot live in the suffix domain raises
DOMAIN_MISMATCH instead of silently casting.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .core import types as _t
from .core.errors import DomainMismatchError, NoValue
from .core.matrix import Matrix
from .core.scalar import Scalar
from .core.types import Type
from .core.vector import Vector

__all__ = ["variant_census"]  # extended programmatically below


def _check_domain(t: Type, value: Any) -> Any:
    """C-style static check: the value must be representable in t."""
    if isinstance(value, (bool, np.bool_)):
        ok = True  # bool converts to every domain
    elif isinstance(value, (int, np.integer)):
        ok = True
        if t.is_integer:
            info = np.iinfo(t.np_dtype)
            ok = info.min <= int(value) <= info.max
    elif isinstance(value, (float, np.floating)):
        ok = t.is_float or float(value).is_integer()
    else:
        ok = False
    if not ok:
        raise DomainMismatchError(
            f"value {value!r} is not representable in {t.name}"
        )
    return t.coerce_scalar(value)


def _make_matrix_set(t: Type) -> Callable:
    def setter(c: Matrix, value: Any, i: int, j: int) -> None:
        c.set_element(_check_domain(t, value), i, j)
    setter.__name__ = f"GrB_Matrix_setElement_{_t.suffix_of(t)}"
    setter.__doc__ = f"Store a {t.name} value at C({{i}},{{j}})."
    return setter


def _make_matrix_extract(t: Type) -> Callable:
    def getter(c: Matrix, i: int, j: int) -> Any:
        return t.coerce_scalar(c.extract_element(i, j))
    getter.__name__ = f"GrB_Matrix_extractElement_{_t.suffix_of(t)}"
    getter.__doc__ = (
        f"Extract C(i,j) as {t.name}; raises NoValue when absent "
        "(the GrB_NO_VALUE return)."
    )
    return getter


def _make_vector_set(t: Type) -> Callable:
    def setter(w: Vector, value: Any, i: int) -> None:
        w.set_element(_check_domain(t, value), i)
    setter.__name__ = f"GrB_Vector_setElement_{_t.suffix_of(t)}"
    return setter


def _make_vector_extract(t: Type) -> Callable:
    def getter(w: Vector, i: int) -> Any:
        return t.coerce_scalar(w.extract_element(i))
    getter.__name__ = f"GrB_Vector_extractElement_{_t.suffix_of(t)}"
    return getter


def _make_scalar_set(t: Type) -> Callable:
    def setter(s: Scalar, value: Any) -> None:
        s.set_element(_check_domain(t, value))
    setter.__name__ = f"GrB_Scalar_setElement_{_t.suffix_of(t)}"
    return setter


def _make_scalar_extract(t: Type) -> Callable:
    def getter(s: Scalar) -> Any:
        return t.coerce_scalar(s.extract_element())
    getter.__name__ = f"GrB_Scalar_extractElement_{_t.suffix_of(t)}"
    return getter


def _make_matrix_reduce(t: Type) -> Callable:
    def reducer(monoid, a: Matrix) -> Any:
        from .ops.reduce import reduce_scalar
        return t.coerce_scalar(reduce_scalar(monoid, a))
    reducer.__name__ = f"GrB_Matrix_reduce_{_t.suffix_of(t)}"
    reducer.__doc__ = (
        f"Typed scalar reduce into {t.name}; an empty matrix yields the "
        "monoid identity (1.X semantics, contrast the GrB_Scalar variant)."
    )
    return reducer


def _make_vector_reduce(t: Type) -> Callable:
    def reducer(monoid, u: Vector) -> Any:
        from .ops.reduce import reduce_scalar
        return t.coerce_scalar(reduce_scalar(monoid, u))
    reducer.__name__ = f"GrB_Vector_reduce_{_t.suffix_of(t)}"
    return reducer


def _make_assign_scalar(kind: str, t: Type) -> Callable:
    if kind == "Matrix":
        def assigner(c, mask, accum, value, I, J, desc=None):  # noqa: E741
            from .ops.assign import assign
            return assign(c, mask, accum, _check_domain(t, value), I, J,
                          desc=desc)
    else:
        def assigner(c, mask, accum, value, I, desc=None):  # noqa: E741
            from .ops.assign import assign
            return assign(c, mask, accum, _check_domain(t, value), I,
                          desc=desc)
    assigner.__name__ = f"GrB_{kind}_assign_{_t.suffix_of(t)}"
    return assigner


def _make_apply_bind(kind: str, side: str, t: Type) -> Callable:
    from .ops.apply import apply as _apply

    if side == "1st":
        def bound(out, mask, accum, op, value, container, desc=None):
            return _apply(out, mask, accum, op, _check_domain(t, value),
                          container, desc=desc)
    else:
        def bound(out, mask, accum, op, container, value, desc=None):
            return _apply(out, mask, accum, op, container,
                          _check_domain(t, value), desc=desc)
    bound.__name__ = f"GrB_{kind}_apply_BinaryOp{side}_{_t.suffix_of(t)}"
    return bound


def _make_select(kind: str, t: Type) -> Callable:
    from .ops.select import select as _select

    def selector(out, mask, accum, op, container, value, desc=None):
        return _select(out, mask, accum, op, container,
                       _check_domain(t, value), desc=desc)
    selector.__name__ = f"GrB_{kind}_select_{_t.suffix_of(t)}"
    return selector


_FACTORIES: dict[str, Callable[[Type], Callable]] = {}
for _suffix_fn, _factory in (
    ("GrB_Matrix_setElement_{}", _make_matrix_set),
    ("GrB_Matrix_extractElement_{}", _make_matrix_extract),
    ("GrB_Vector_setElement_{}", _make_vector_set),
    ("GrB_Vector_extractElement_{}", _make_vector_extract),
    ("GrB_Scalar_setElement_{}", _make_scalar_set),
    ("GrB_Scalar_extractElement_{}", _make_scalar_extract),
    ("GrB_Matrix_reduce_{}", _make_matrix_reduce),
    ("GrB_Vector_reduce_{}", _make_vector_reduce),
):
    for _type in _t.PREDEFINED_TYPES:
        _name = _suffix_fn.format(_t.suffix_of(_type))
        globals()[_name] = _factory(_type)
        __all__.append(_name)

for _kind in ("Matrix", "Vector"):
    for _type in _t.PREDEFINED_TYPES:
        _sfx = _t.suffix_of(_type)
        _name = f"GrB_{_kind}_assign_{_sfx}"
        globals()[_name] = _make_assign_scalar(_kind, _type)
        __all__.append(_name)
        for _side in ("1st", "2nd"):
            _name = f"GrB_{_kind}_apply_BinaryOp{_side}_{_sfx}"
            globals()[_name] = _make_apply_bind(_kind, _side, _type)
            __all__.append(_name)
        _name = f"GrB_{_kind}_select_{_sfx}"
        globals()[_name] = _make_select(_kind, _type)
        __all__.append(_name)


def variant_census() -> dict[str, int]:
    """How many typed variants each method family needed (the §VI point).

    With ``GrB_Scalar`` each of these families collapses to a single
    variant — the reduction the paper quantifies qualitatively.
    """
    census: dict[str, int] = {}
    for name in __all__:
        if not name.startswith("GrB_"):
            continue
        base = name.rsplit("_", 1)[0]
        census[base] = census.get(base, 0) + 1
    return census

"""A LAGraph-style property graph (the paper's reference [10] layer).

LAGraph wraps a GraphBLAS adjacency matrix in a ``Graph`` object that
caches derived *properties* — the transpose, degree vectors, symmetry,
self-loop count — so algorithms don't recompute them, and dispatches
the algorithm library with those properties pre-supplied.  This module
plays that role here: every cached property is computed **through the
public GraphBLAS API** and invalidated when the underlying matrix is
replaced.

    g = Graph.from_edges(rows, cols, vals, n, kind="undirected")
    g.out_degree()          # cached reduce
    g.triangle_count()      # picks the masked algorithm, reuses cache
"""

from __future__ import annotations

import enum
from typing import Any, Sequence

import numpy as np

from .core import types as _t
from .core.binaryop import ONEB
from .core.descriptor import DESC_T0
from .core.errors import InvalidValueError
from .core.matrix import Matrix
from .core.monoid import PLUS_MONOID
from .core.types import Type
from .core.vector import Vector
from .ops.apply import apply
from .ops.ewise import ewise_mult
from .ops.reduce import reduce_scalar, reduce_to_vector
from .ops.select import select
from .ops.transpose import transpose

__all__ = ["Graph", "GraphKind"]


class GraphKind(enum.Enum):
    DIRECTED = "directed"
    UNDIRECTED = "undirected"


class Graph:
    """An adjacency matrix plus cached derived properties."""

    def __init__(self, a: Matrix, kind: GraphKind | str = GraphKind.DIRECTED):
        if a.nrows != a.ncols:
            raise InvalidValueError("a graph's adjacency matrix must be square")
        self.a = a
        self.kind = GraphKind(kind)
        self._cache: dict[str, Any] = {}

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        rows: Sequence[int],
        cols: Sequence[int],
        values: Sequence[Any] | None,
        n: int,
        *,
        t: Type = _t.FP64,
        kind: GraphKind | str = GraphKind.DIRECTED,
        no_self_loops: bool = False,
    ) -> "Graph":
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = (np.ones(len(rows)) if values is None
                else np.asarray(values))
        if no_self_loops:
            keep = rows != cols
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        kind = GraphKind(kind)
        if kind == GraphKind.UNDIRECTED:
            rows, cols = np.concatenate([rows, cols]), \
                np.concatenate([cols, rows])
            vals = np.concatenate([vals, vals])
        a = Matrix.new(t, n, n)
        from .core.binaryop import MAX
        a.build(rows, cols, vals, MAX[t] if t in MAX else None)
        a.wait()
        return cls(a, kind)

    # -- cache plumbing ------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cached property (call after mutating ``a``)."""
        self._cache.clear()

    def set_matrix(self, a: Matrix) -> None:
        if a.nrows != a.ncols:
            raise InvalidValueError("adjacency matrix must be square")
        self.a = a
        self.invalidate()

    def _cached(self, key: str, compute):
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    # -- properties (LAGraph's "cached properties") ------------------------------

    @property
    def n(self) -> int:
        return self.a.nrows

    @property
    def nedges(self) -> int:
        m = self.a.nvals()
        return m // 2 if self.kind == GraphKind.UNDIRECTED else m

    def pattern(self) -> Matrix:
        """INT64 pattern matrix (all stored values 1)."""
        def compute():
            p = Matrix.new(_t.INT64, self.n, self.n, self.a.context)
            apply(p, None, None, ONEB[_t.INT64], self.a, 1)
            p.wait()
            return p
        return self._cached("pattern", compute)

    def transposed(self) -> Matrix:
        """Aᵀ, cached (LAGraph's AT property)."""
        def compute():
            at = Matrix.new(self.a.type, self.n, self.n, self.a.context)
            transpose(at, None, None, self.a)
            at.wait()
            return at
        return self._cached("AT", compute)

    def out_degree(self) -> Vector:
        def compute():
            d = Vector.new(_t.INT64, self.n, self.a.context)
            reduce_to_vector(d, None, None, PLUS_MONOID[_t.INT64],
                             self.pattern())
            d.wait()
            return d
        return self._cached("out_degree", compute)

    def in_degree(self) -> Vector:
        def compute():
            d = Vector.new(_t.INT64, self.n, self.a.context)
            reduce_to_vector(d, None, None, PLUS_MONOID[_t.INT64],
                             self.pattern(), desc=DESC_T0)
            d.wait()
            return d
        return self._cached("in_degree", compute)

    def is_symmetric(self) -> bool:
        """Structural+value symmetry, computed algebraically.

        ``A`` is symmetric iff ``A`` and ``Aᵀ`` have the same pattern
        and equal values on it: checked with eWise machinery only.
        """
        def compute():
            at = self.transposed()
            if self.a.nvals() != at.nvals():
                return False
            from .core.binaryop import EQ
            from .core.monoid import LAND_MONOID_BOOL
            eq = Matrix.new(_t.BOOL, self.n, self.n, self.a.context)
            ewise_mult(eq, None, None, EQ[self.a.type], self.a, at)
            if eq.nvals() != self.a.nvals():
                return False   # patterns differ
            return bool(reduce_scalar(LAND_MONOID_BOOL, eq))
        return self._cached("symmetric", compute)

    def nself_loops(self) -> int:
        def compute():
            from .core.indexunaryop import DIAG
            d = Matrix.new(self.a.type, self.n, self.n, self.a.context)
            select(d, None, None, DIAG, self.a, 0)
            return d.nvals()
        return self._cached("nself_loops", compute)

    # -- algorithm dispatch (reusing cached properties) ---------------------------

    def bfs_levels(self, source: int) -> Vector:
        from .algorithms import bfs_levels
        return bfs_levels(self.a, source)

    def bfs_parents(self, source: int) -> Vector:
        from .algorithms import bfs_parents
        return bfs_parents(self.a, source)

    def sssp(self, source: int) -> Vector:
        from .algorithms import sssp
        return sssp(self.a, source)

    def triangle_count(self) -> int:
        if self.kind != GraphKind.UNDIRECTED and not self.is_symmetric():
            raise InvalidValueError(
                "triangle counting needs an undirected (symmetric) graph"
            )
        from .algorithms import triangle_count
        return triangle_count(self.a)

    def connected_components(self) -> Vector:
        from .algorithms import connected_components
        return connected_components(self.a)

    def pagerank(self, damping: float = 0.85, tol: float = 1e-6,
                 max_iters: int = 100):
        from .algorithms import pagerank
        return pagerank(self.a, damping, tol, max_iters)

    def k_truss(self, k: int) -> Matrix:
        from .algorithms import k_truss
        return k_truss(self.a, k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Graph({self.kind.value}, n={self.n}, "
                f"nedges={self.nedges}, cached={sorted(self._cache)})")

"""Elementwise operations: ``eWiseAdd`` (union) and ``eWiseMult``
(intersection), vector and matrix variants.

Per the specification the operator argument may be a ``BinaryOp``, a
``Monoid`` (its operator is used), or a ``Semiring`` (its additive
monoid's operator for eWiseAdd, its multiply operator for eWiseMult).
"""

from __future__ import annotations

from typing import Union

from ..core.binaryop import BinaryOp
from ..core.descriptor import Descriptor
from ..core.errors import DimensionMismatchError, DomainMismatchError
from ..core.matrix import Matrix
from ..core.monoid import Monoid
from ..core.semiring import Semiring
from ..core.vector import Vector
from ..internals import ewise as _k
from .common import (
    capture_source,
    check_accum,
    check_context,
    check_output_cast,
    mask_metadata,
    require,
    resolve_desc,
    writeback_closure,
)

__all__ = ["ewise_add", "ewise_mult"]

OpLike = Union[BinaryOp, Monoid, Semiring]


def _resolve_op(op: OpLike, *, add: bool) -> BinaryOp:
    if isinstance(op, BinaryOp):
        return op
    if isinstance(op, Monoid):
        return op.op
    if isinstance(op, Semiring):
        return op.add.op if add else op.mult
    raise DomainMismatchError(
        f"eWise operator must be BinaryOp/Monoid/Semiring, got {op!r}"
    )


def _ewise_mat(
    C: Matrix, Mask, accum, op: OpLike, A: Matrix, B: Matrix, desc, *, union: bool
) -> Matrix:
    d = resolve_desc(desc)
    binop = _resolve_op(op, add=union)
    accum = check_accum(accum)
    check_output_cast(binop.out_type, C.type)
    check_context(C, Mask, A, B)

    a_shape = (A.ncols, A.nrows) if d.transpose0 else (A.nrows, A.ncols)
    b_shape = (B.ncols, B.nrows) if d.transpose1 else (B.nrows, B.ncols)
    require(a_shape == b_shape, DimensionMismatchError,
            f"eWise inputs: {a_shape} vs {b_shape}")
    require((C.nrows, C.ncols) == a_shape, DimensionMismatchError,
            f"eWise output shape {(C.nrows, C.ncols)} != {a_shape}")
    if Mask is not None:
        require((Mask.nrows, Mask.ncols) == (C.nrows, C.ncols),
                DimensionMismatchError, "mask shape must match output")

    a_src = capture_source(A)
    b_src = capture_source(B) if B is not A else a_src
    mask_src = capture_source(Mask)
    tran0, tran1 = d.transpose0, d.transpose1

    if union:
        def compute(datas):
            a = datas[0].transpose() if tran0 else datas[0]
            b = datas[1].transpose() if tran1 else datas[1]
            return _k.mat_union(a, b, binop, binop.out_type)
    else:
        def compute(datas, pushed_keys=None, pushed_comp=False):
            a = datas[0].transpose() if tran0 else datas[0]
            b = datas[1].transpose() if tran1 else datas[1]
            return _k.mat_intersect(
                a, b, binop, binop.out_type,
                mask_keys=pushed_keys, mask_complement=pushed_comp,
            )

    # Which inputs a mask filter may be pushed *through* (producer-side
    # pushdown): a transposed input lives in the wrong coordinate space;
    # a union only behaves like an intersection when both inputs are the
    # same untransposed source (then filtering it filters the union).
    if union:
        push_targets = (
            (0,) if b_src is a_src and not (tran0 or tran1) else None
        )
    else:
        push_targets = tuple(
            i for i, t in ((0, tran0), (1, tran1)) if not t
        ) or None

    writeback, pure = writeback_closure(
        False, C.type, mask_src, accum,
        complement=d.mask_complement,
        structure=d.mask_structure,
        replace=d.replace,
    )
    inputs = [a_src, b_src] if mask_src is None else [a_src, b_src, mask_src]
    C._submit_op(
        kind="eWiseAdd" if union else "eWiseMult",
        label="eWiseAdd" if union else "eWiseMult",
        inputs=inputs, compute=compute, writeback=writeback,
        out_type=C.type, pure=pure,
        complete_safe=pure and binop.is_builtin,
        opkey=("eWiseAdd" if union else "eWiseMult",
               id(binop), tran0, tran1),
        cse_safe=binop.is_builtin,
        mask_info=mask_metadata(
            mask_src, accum,
            complement=d.mask_complement,
            structure=d.mask_structure,
            replace=d.replace,
        ),
        pushable=not union,
        push_targets=push_targets,
    )
    return C


def _ewise_vec(
    w: Vector, mask, accum, op: OpLike, u: Vector, v: Vector, desc, *, union: bool
) -> Vector:
    d = resolve_desc(desc)
    binop = _resolve_op(op, add=union)
    accum = check_accum(accum)
    check_output_cast(binop.out_type, w.type)
    check_context(w, mask, u, v)
    require(u.size == v.size, DimensionMismatchError,
            f"eWise inputs: {u.size} vs {v.size}")
    require(w.size == u.size, DimensionMismatchError,
            f"eWise output size {w.size} != {u.size}")
    if mask is not None:
        require(mask.size == w.size, DimensionMismatchError,
                "mask size must match output")

    u_src = capture_source(u)
    v_src = capture_source(v) if v is not u else u_src
    mask_src = capture_source(mask)

    if union:
        def compute(datas):
            return _k.vec_union(datas[0], datas[1], binop, binop.out_type)

        push_targets = (0,) if v_src is u_src else None
    else:
        def compute(datas, pushed_keys=None, pushed_comp=False):
            return _k.vec_intersect(
                datas[0], datas[1], binop, binop.out_type,
                mask_keys=pushed_keys, mask_complement=pushed_comp,
            )

        push_targets = (0, 1)

    writeback, pure = writeback_closure(
        True, w.type, mask_src, accum,
        complement=d.mask_complement,
        structure=d.mask_structure,
        replace=d.replace,
    )
    inputs = [u_src, v_src] if mask_src is None else [u_src, v_src, mask_src]
    w._submit_op(
        kind="eWiseAdd" if union else "eWiseMult",
        label="eWiseAdd" if union else "eWiseMult",
        inputs=inputs, compute=compute, writeback=writeback,
        out_type=w.type, pure=pure,
        complete_safe=pure and binop.is_builtin,
        opkey=("eWiseAdd" if union else "eWiseMult", id(binop)),
        cse_safe=binop.is_builtin,
        mask_info=mask_metadata(
            mask_src, accum,
            complement=d.mask_complement,
            structure=d.mask_structure,
            replace=d.replace,
        ),
        pushable=not union,
        push_targets=push_targets,
    )
    return w


def ewise_add(out, mask, accum, op: OpLike, a, b, desc: Descriptor | None = None):
    """``GrB_eWiseAdd``: result over the structural *union*.

    Dispatches on output type: Vector or Matrix variants.
    """
    if isinstance(out, Matrix):
        return _ewise_mat(out, mask, accum, op, a, b, desc, union=True)
    if isinstance(out, Vector):
        return _ewise_vec(out, mask, accum, op, a, b, desc, union=True)
    raise DomainMismatchError(f"eWiseAdd output must be Vector/Matrix, got {out!r}")


def ewise_mult(out, mask, accum, op: OpLike, a, b, desc: Descriptor | None = None):
    """``GrB_eWiseMult``: result over the structural *intersection*."""
    if isinstance(out, Matrix):
        return _ewise_mat(out, mask, accum, op, a, b, desc, union=False)
    if isinstance(out, Vector):
        return _ewise_vec(out, mask, accum, op, a, b, desc, union=False)
    raise DomainMismatchError(f"eWiseMult output must be Vector/Matrix, got {out!r}")

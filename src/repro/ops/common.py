"""Shared validation and dispatch helpers for the operations layer.

Every GraphBLAS operation follows the same protocol:

1. **Validate** all arguments (API errors raise here, before anything is
   modified — the §V guarantee).
2. **Capture** the input carriers (forcing their sequences — inputs must
   be definite; output-side work can stay deferred).
3. **Submit** a thunk to the output object's sequence.  The thunk
   receives the output's *current* carrier (so accumulation chains
   deferred in nonblocking mode compose in order), computes the result
   T, and funnels it through the standard mask/accumulator write-back.

Context rule (§IV): all matrices and vectors participating in one
method call must share an execution context.
"""

from __future__ import annotations

from typing import Any

from ..core.binaryop import BinaryOp
from ..core.context import Context
from ..core.descriptor import NULL_DESC, Descriptor
from ..core.errors import (
    DomainMismatchError,
    EmptyObjectError,
    InvalidValueError,
    NullPointerError,
)
from ..core.matrix import Matrix
from ..core.scalar import Scalar
from ..core.vector import Vector

__all__ = [
    "resolve_desc",
    "check_context",
    "check_accum",
    "scalar_value",
    "require",
    "check_output_cast",
    "capture_source",
    "writeback_closure",
    "mask_metadata",
]


def resolve_desc(desc: Descriptor | None) -> Descriptor:
    """``None`` plays the role of ``GrB_NULL``: all defaults."""
    if desc is None:
        return NULL_DESC
    if not isinstance(desc, Descriptor):
        raise InvalidValueError(f"not a descriptor: {desc!r}")
    return desc


def check_context(*objs: Any) -> Context:
    """Enforce the shared-context rule; returns the common context."""
    ctx: Context | None = None
    for obj in objs:
        if obj is None:
            continue
        if isinstance(obj, (Matrix, Vector, Scalar)):
            obj._check_valid()
            c = obj.context
            c.check_valid()
            if ctx is None:
                ctx = c
            elif c is not ctx:
                raise InvalidValueError(
                    "all GraphBLAS objects in a method must share a context "
                    f"(§IV): {ctx!r} vs {c!r}"
                )
    if ctx is None:
        raise NullPointerError("operation requires at least one GraphBLAS object")
    return ctx


def check_accum(accum: BinaryOp | None) -> BinaryOp | None:
    if accum is None:
        return None
    if not isinstance(accum, BinaryOp):
        raise DomainMismatchError(f"accumulator must be a BinaryOp, got {accum!r}")
    return accum


def scalar_value(s: Any, *, what: str = "scalar") -> Any:
    """Resolve a ``<type> s`` argument that may be a ``GrB_Scalar``.

    Table II makes the scalar argument uniformly a ``GrB_Scalar``; the
    typed variants pass plain values.  An *empty* scalar where a value
    is required is the EMPTY_OBJECT execution error (§VI).
    """
    if isinstance(s, Scalar):
        data = s._capture()
        if not data.present:
            raise EmptyObjectError(f"empty GrB_Scalar used as {what}")
        return data.value
    if s is None:
        raise NullPointerError(f"{what} is NULL")
    return s


def require(cond: bool, exc_cls, message: str) -> None:
    if not cond:
        raise exc_cls(message)


def capture_source(obj):
    """Capture an input container as an engine :class:`Source`.

    In nonblocking mode a pending input is captured as a reference to
    its producing DAG node — a snapshot, without forcing its sequence
    (§III: using an object as an input adds a data edge; only
    value-*reads* force).  Materialized inputs capture their immutable
    carrier directly, which is also the blocking-mode path.
    """
    if obj is None:
        return None
    return obj._as_source()


def writeback_closure(
    is_vec: bool,
    out_type,
    mask_src,
    accum: BinaryOp | None,
    *,
    complement: bool = False,
    structure: bool = False,
    replace: bool = False,
):
    """Build ``(writeback, pure)`` for the standard ``C⟨M, r⟩ = C ⊙ T``
    funnel.

    ``pure`` is true when the write-back ignores the output's previous
    state entirely (no mask, no complement, no accumulator — the funnel
    degenerates to a domain cast of T).  Purity is what entitles the
    engine's fusion pass to absorb the node into a consumer.
    """
    if mask_src is None and not complement and accum is None:
        def writeback(prev, t):
            return t.astype(out_type)

        return writeback, True

    from ..internals.maskaccum import mat_write_back, vec_write_back

    funnel = vec_write_back if is_vec else mat_write_back

    def writeback(prev, t):
        mask_data = mask_src.resolve() if mask_src is not None else None
        return funnel(
            prev, t, out_type, mask_data, accum,
            complement=complement, structure=structure, replace=replace,
        )

    return writeback, False


def mask_metadata(
    mask_src,
    accum: BinaryOp | None,
    *,
    complement: bool = False,
    structure: bool = False,
    replace: bool = False,
):
    """Describe a write-back for the planner (``None`` when pure).

    The write-back closure is opaque to the engine; this record is what
    the mask-pushdown pass reasons about.  It must describe the same
    funnel :func:`writeback_closure` builds from the same arguments.
    """
    if mask_src is None and not complement and accum is None:
        return None
    from ..engine.dag import MaskInfo

    return MaskInfo(
        mask_src, complement=complement, structure=structure,
        replace=replace, has_accum=accum is not None,
    )


def check_output_cast(result_type, out_type) -> None:
    """The result domain must cast into the output's domain (API error).

    UDTs have no implicit casts (spec rule), so a UDT-valued result can
    only land in an output of the very same UDT.
    """
    from ..core.types import cast_allowed

    if not cast_allowed(result_type, out_type):
        raise DomainMismatchError(
            f"result domain {result_type.name} does not cast to output "
            f"domain {out_type.name}"
        )



"""Shared validation and dispatch helpers for the operations layer.

Every GraphBLAS operation follows the same protocol:

1. **Validate** all arguments (API errors raise here, before anything is
   modified — the §V guarantee).
2. **Capture** the input carriers (forcing their sequences — inputs must
   be definite; output-side work can stay deferred).
3. **Submit** a thunk to the output object's sequence.  The thunk
   receives the output's *current* carrier (so accumulation chains
   deferred in nonblocking mode compose in order), computes the result
   T, and funnels it through the standard mask/accumulator write-back.

Context rule (§IV): all matrices and vectors participating in one
method call must share an execution context.
"""

from __future__ import annotations

from typing import Any

from ..core.binaryop import BinaryOp
from ..core.context import Context
from ..core.descriptor import NULL_DESC, Descriptor
from ..core.errors import (
    DimensionMismatchError,
    DomainMismatchError,
    EmptyObjectError,
    InvalidValueError,
    NullPointerError,
)
from ..core.matrix import Matrix
from ..core.scalar import Scalar
from ..core.vector import Vector

__all__ = [
    "resolve_desc",
    "check_context",
    "check_accum",
    "scalar_value",
    "require",
    "check_output_cast",
]


def resolve_desc(desc: Descriptor | None) -> Descriptor:
    """``None`` plays the role of ``GrB_NULL``: all defaults."""
    if desc is None:
        return NULL_DESC
    if not isinstance(desc, Descriptor):
        raise InvalidValueError(f"not a descriptor: {desc!r}")
    return desc


def check_context(*objs: Any) -> Context:
    """Enforce the shared-context rule; returns the common context."""
    ctx: Context | None = None
    for obj in objs:
        if obj is None:
            continue
        if isinstance(obj, (Matrix, Vector, Scalar)):
            obj._check_valid()
            c = obj.context
            c.check_valid()
            if ctx is None:
                ctx = c
            elif c is not ctx:
                raise InvalidValueError(
                    "all GraphBLAS objects in a method must share a context "
                    f"(§IV): {ctx!r} vs {c!r}"
                )
    if ctx is None:
        raise NullPointerError("operation requires at least one GraphBLAS object")
    return ctx


def check_accum(accum: BinaryOp | None) -> BinaryOp | None:
    if accum is None:
        return None
    if not isinstance(accum, BinaryOp):
        raise DomainMismatchError(f"accumulator must be a BinaryOp, got {accum!r}")
    return accum


def scalar_value(s: Any, *, what: str = "scalar") -> Any:
    """Resolve a ``<type> s`` argument that may be a ``GrB_Scalar``.

    Table II makes the scalar argument uniformly a ``GrB_Scalar``; the
    typed variants pass plain values.  An *empty* scalar where a value
    is required is the EMPTY_OBJECT execution error (§VI).
    """
    if isinstance(s, Scalar):
        data = s._capture()
        if not data.present:
            raise EmptyObjectError(f"empty GrB_Scalar used as {what}")
        return data.value
    if s is None:
        raise NullPointerError(f"{what} is NULL")
    return s


def require(cond: bool, exc_cls, message: str) -> None:
    if not cond:
        raise exc_cls(message)


def check_output_cast(result_type, out_type) -> None:
    """The result domain must cast into the output's domain (API error).

    UDTs have no implicit casts (spec rule), so a UDT-valued result can
    only land in an output of the very same UDT.
    """
    from ..core.types import cast_allowed

    if not cast_allowed(result_type, out_type):
        raise DomainMismatchError(
            f"result domain {result_type.name} does not cast to output "
            f"domain {out_type.name}"
        )



"""``GrB_assign`` — write a container (or scalar fill) into a region.

Variants (C polymorphic interface, dispatched on argument kinds):

* ``assign(w, mask, accum, u, I, desc)``        — w⟨m⟩(I) = u
* ``assign(C, Mask, accum, A, I, J, desc)``     — C⟨M⟩(I,J) = A
* ``assign(C, mask, accum, u, i, J, desc)``     — C⟨m'⟩(i,J) = u   (Row_assign)
* ``assign(C, mask, accum, u, I, j, desc)``     — C⟨m⟩(I,j) = u    (Col_assign)
* ``assign(w, mask, accum, s, I, desc)``        — w⟨m⟩(I) = s      (scalar fill)
* ``assign(C, Mask, accum, s, I, J, desc)``     — C⟨M⟩(I,J) = s

The scalar ``s`` may be a plain value or a ``GrB_Scalar`` (Table II); an
*empty* scalar deletes the region (unaccumulated) or is a no-op
(accumulated).  For the whole-container variants the mask spans the
entire output; for Row/Col assign the vector mask spans just that row or
column, and REPLACE clears only within it — the named helpers
:func:`assign_row` / :func:`assign_col` disambiguate the rare
all-integer corner.

Index lists must not contain duplicates (unlike extract).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.descriptor import Descriptor
from ..core.errors import DimensionMismatchError, DomainMismatchError
from ..core.matrix import Matrix
from ..core.scalar import Scalar
from ..core.vector import Vector
from ..internals import assign as _k
from ..internals.containers import VecData
from ..internals.extract import mat_extract_col
from ..internals.maskaccum import mat_write_back, vec_write_back
from .common import (
    capture_source,
    check_accum,
    check_context,
    require,
    resolve_desc,
)

__all__ = ["assign", "assign_row", "assign_col"]


def _idx(indices):
    return None if indices is None else np.asarray(indices, dtype=np.int64)


def _idx_len(indices, full: int) -> int:
    return full if indices is None else len(np.asarray(indices).reshape(-1))


def _scalar_fill_value(s: Any):
    """Plain value, or None for an empty GrB_Scalar (deletes the region)."""
    if isinstance(s, Scalar):
        data = s._capture()
        return data.value if data.present else None
    return s


def _wb(d):
    return dict(
        complement=d.mask_complement,
        structure=d.mask_structure,
        replace=d.replace,
    )


def assign(
    out,
    mask,
    accum,
    value,
    indices,
    second: Any = None,
    desc: Descriptor | None = None,
):
    """Polymorphic ``GrB_assign`` (see module docstring)."""
    if isinstance(second, Descriptor) and desc is None:
        desc, second = second, None
    d = resolve_desc(desc)
    accum = check_accum(accum)

    if isinstance(out, Vector):
        if isinstance(value, Vector):
            return _vec_assign(out, mask, accum, value, indices, d)
        return _vec_assign_scalar(out, mask, accum, value, indices, d)

    if isinstance(out, Matrix):
        if isinstance(value, Vector):
            i_is_int = isinstance(indices, (int, np.integer))
            j_is_int = isinstance(second, (int, np.integer))
            if i_is_int and j_is_int:
                raise DomainMismatchError(
                    "ambiguous row/col assign: use assign_row or assign_col"
                )
            if i_is_int:
                return assign_row(out, mask, accum, value, int(indices), second, d)
            if j_is_int:
                return assign_col(out, mask, accum, value, indices, int(second), d)
            raise DomainMismatchError(
                "row/col assign requires one integer index"
            )
        if isinstance(value, Matrix):
            return _mat_assign(out, mask, accum, value, indices, second, d)
        return _mat_assign_scalar(out, mask, accum, value, indices, second, d)

    raise DomainMismatchError(f"assign output must be Vector/Matrix, got {out!r}")


# ---------------------------------------------------------------------------
# Whole-container variants
# ---------------------------------------------------------------------------

def _vec_assign(w: Vector, mask, accum, u: Vector, indices, d):
    check_context(w, mask, u)
    require(u.size == _idx_len(indices, w.size), DimensionMismatchError,
            "assign source size != |I|")
    if mask is not None:
        require(mask.size == w.size, DimensionMismatchError,
                "assign mask spans the whole output vector")
    u_src = capture_source(u)
    mask_src = capture_source(mask)
    out_type = w.type
    idx = _idx(indices)
    wb = _wb(d)

    def thunk(c):
        mask_data = mask_src.resolve() if mask_src is not None else None
        z = _k.vec_assign(c, u_src.resolve(), idx, accum, out_type)
        return vec_write_back(c, z, out_type, mask_data, None, **wb)

    w._submit(thunk, "assign(vector)",
              inputs=[u_src] if mask_src is None else [u_src, mask_src])
    return w


def _vec_assign_scalar(w: Vector, mask, accum, s, indices, d):
    check_context(w, mask)
    if mask is not None:
        require(mask.size == w.size, DimensionMismatchError,
                "assign mask spans the whole output vector")
    fill = _scalar_fill_value(s)
    mask_src = capture_source(mask)
    out_type = w.type
    idx = _idx(indices)
    wb = _wb(d)

    def thunk(c):
        mask_data = mask_src.resolve() if mask_src is not None else None
        z = _k.vec_assign_scalar(c, fill, idx, accum, out_type)
        return vec_write_back(c, z, out_type, mask_data, None, **wb)

    w._submit(thunk, "assign(vector,scalar)",
              inputs=[] if mask_src is None else [mask_src])
    return w


def _mat_assign(C: Matrix, Mask, accum, A: Matrix, I, J, d):
    check_context(C, Mask, A)
    a_shape = (A.ncols, A.nrows) if d.transpose0 else (A.nrows, A.ncols)
    require(
        a_shape == (_idx_len(I, C.nrows), _idx_len(J, C.ncols)),
        DimensionMismatchError, "assign source shape != region shape",
    )
    if Mask is not None:
        require((Mask.nrows, Mask.ncols) == (C.nrows, C.ncols),
                DimensionMismatchError, "assign mask spans the whole output")
    a_src = capture_source(A)
    mask_src = capture_source(Mask)
    out_type = C.type
    tran = d.transpose0
    ridx, cidx = _idx(I), _idx(J)
    wb = _wb(d)

    def thunk(c):
        a_data = a_src.resolve()
        mask_data = mask_src.resolve() if mask_src is not None else None
        src = a_data.transpose() if tran else a_data
        z = _k.mat_assign(c, src, ridx, cidx, accum, out_type)
        return mat_write_back(c, z, out_type, mask_data, None, **wb)

    C._submit(thunk, "assign(matrix)",
              inputs=[a_src] if mask_src is None else [a_src, mask_src])
    return C


def _mat_assign_scalar(C: Matrix, Mask, accum, s, I, J, d):
    check_context(C, Mask)
    if Mask is not None:
        require((Mask.nrows, Mask.ncols) == (C.nrows, C.ncols),
                DimensionMismatchError, "assign mask spans the whole output")
    fill = _scalar_fill_value(s)
    mask_src = capture_source(Mask)
    out_type = C.type
    ridx, cidx = _idx(I), _idx(J)
    wb = _wb(d)

    def thunk(c):
        mask_data = mask_src.resolve() if mask_src is not None else None
        z = _k.mat_assign_scalar(c, fill, ridx, cidx, accum, out_type)
        return mat_write_back(c, z, out_type, mask_data, None, **wb)

    C._submit(thunk, "assign(matrix,scalar)",
              inputs=[] if mask_src is None else [mask_src])
    return C


# ---------------------------------------------------------------------------
# Row / column variants (vector mask scoped to the row/column)
# ---------------------------------------------------------------------------

def assign_row(
    C: Matrix,
    mask: Vector | None,
    accum,
    u: Vector,
    row: int,
    col_indices,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_Row_assign``: C⟨m'⟩(i, J) = accum(C(i, J), u)."""
    d = desc if isinstance(desc, Descriptor) else resolve_desc(desc)
    accum = check_accum(accum)
    check_context(C, mask, u)
    require(0 <= row < C.nrows, DimensionMismatchError,
            f"row {row} out of range [0, {C.nrows})")
    require(u.size == _idx_len(col_indices, C.ncols), DimensionMismatchError,
            "row-assign source size != |J|")
    if mask is not None:
        require(mask.size == C.ncols, DimensionMismatchError,
                "row-assign mask spans the row (length ncols)")
    u_src = capture_source(u)
    mask_src = capture_source(mask)
    out_type = C.type
    cidx = _idx(col_indices)
    wb = _wb(d)
    r = int(row)

    def thunk(c):
        mask_data = mask_src.resolve() if mask_src is not None else None
        cols, vals = c.row_slice(r)
        c_row = VecData(c.ncols, c.type, cols.copy(), vals.copy())
        z_row = _k.vec_assign(c_row, u_src.resolve(), cidx, accum, out_type)
        new_row = vec_write_back(c_row, z_row, out_type, mask_data, None, **wb)
        return _k._mat_region_update(
            c, np.full(new_row.nvals, r, dtype=np.int64), new_row.indices,
            new_row.values, np.array([r], dtype=np.int64), None, None, out_type,
        )

    C._submit(thunk, "assign(row)",
              inputs=[u_src] if mask_src is None else [u_src, mask_src])
    return C


def assign_col(
    C: Matrix,
    mask: Vector | None,
    accum,
    u: Vector,
    row_indices,
    col: int,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_Col_assign``: C⟨m⟩(I, j) = accum(C(I, j), u)."""
    d = desc if isinstance(desc, Descriptor) else resolve_desc(desc)
    accum = check_accum(accum)
    check_context(C, mask, u)
    require(0 <= col < C.ncols, DimensionMismatchError,
            f"column {col} out of range [0, {C.ncols})")
    require(u.size == _idx_len(row_indices, C.nrows), DimensionMismatchError,
            "col-assign source size != |I|")
    if mask is not None:
        require(mask.size == C.nrows, DimensionMismatchError,
                "col-assign mask spans the column (length nrows)")
    u_src = capture_source(u)
    mask_src = capture_source(mask)
    out_type = C.type
    ridx = _idx(row_indices)
    wb = _wb(d)
    j = int(col)

    def thunk(c):
        mask_data = mask_src.resolve() if mask_src is not None else None
        c_col = mat_extract_col(c, j, None)
        z_col = _k.vec_assign(c_col, u_src.resolve(), ridx, accum, out_type)
        new_col = vec_write_back(c_col, z_col, out_type, mask_data, None, **wb)
        return _k._mat_region_update(
            c, new_col.indices, np.full(new_col.nvals, j, dtype=np.int64),
            new_col.values, None, np.array([j], dtype=np.int64), None, out_type,
        )

    C._submit(thunk, "assign(col)",
              inputs=[u_src] if mask_src is None else [u_src, mask_src])
    return C

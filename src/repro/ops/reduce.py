"""``GrB_reduce`` — reductions to vector and to scalar.

Variants:

* ``reduce(w, mask, accum, monoid, A, desc)`` — row-reduce a matrix to a
  vector: ``w(i) = ⊕_j A(i,j)`` (INP0-transpose gives column reduce).
* typed scalar: ``reduce_scalar(monoid, u_or_A)`` returns a plain value,
  the monoid identity when the container is empty (the 1.X behaviour).
* ``GrB_Scalar`` output (Table II): ``reduce(s, accum, monoid_or_binop,
  u_or_A, desc)`` stores into an opaque scalar; an empty container
  yields an **empty** scalar instead of the identity (§VI), and a plain
  associative ``BinaryOp`` is now acceptable as the reducer because no
  identity is required.
"""

from __future__ import annotations

from typing import Any, Union

from ..core.binaryop import BinaryOp
from ..core.descriptor import Descriptor
from ..core.errors import DimensionMismatchError, DomainMismatchError
from ..core.matrix import Matrix
from ..core.monoid import Monoid
from ..core.scalar import Scalar
from ..core.vector import Vector
from ..internals import reduce as _k
from .common import (
    capture_source,
    check_accum,
    check_context,
    require,
    resolve_desc,
    writeback_closure,
)

__all__ = ["reduce", "reduce_to_vector", "reduce_scalar"]


def reduce_to_vector(
    w: Vector,
    mask: Vector | None,
    accum,
    monoid: Monoid,
    A: Matrix,
    desc: Descriptor | None = None,
) -> Vector:
    """``GrB_Matrix_reduce_Monoid``: w⟨m⟩ = accum(w, ⊕_j A(:,j))."""
    d = resolve_desc(desc)
    accum = check_accum(accum)
    require(isinstance(monoid, Monoid), DomainMismatchError,
            f"vector reduce requires a Monoid, got {monoid!r}")
    check_context(w, mask, A)
    rows = A.ncols if d.transpose0 else A.nrows
    require(w.size == rows, DimensionMismatchError,
            f"reduce output size {w.size} != {rows}")
    if mask is not None:
        require(mask.size == w.size, DimensionMismatchError,
                "mask size must match output")
    a_src = capture_source(A)
    mask_src = capture_source(mask)
    tran = d.transpose0

    def compute(datas):
        src = datas[0].transpose() if tran else datas[0]
        return _k.mat_reduce_rows(src, monoid, monoid.type)

    writeback, pure = writeback_closure(
        True, w.type, mask_src, accum,
        complement=d.mask_complement,
        structure=d.mask_structure,
        replace=d.replace,
    )
    inputs = [a_src] if mask_src is None else [a_src, mask_src]
    w._submit_op(
        kind="reduce", label="reduce(vector)", inputs=inputs,
        compute=compute, writeback=writeback,
        out_type=w.type, pure=pure,
    )
    return w


def reduce_scalar(monoid: Monoid, container) -> Any:
    """Typed scalar reduce — returns the monoid identity when empty."""
    require(isinstance(monoid, Monoid), DomainMismatchError,
            f"typed scalar reduce requires a Monoid, got {monoid!r}")
    check_context(container)
    if isinstance(container, Matrix):
        out = _k.mat_reduce_scalar(container._capture(), monoid)
    elif isinstance(container, Vector):
        out = _k.vec_reduce_scalar(container._capture(), monoid)
    else:
        raise DomainMismatchError(f"cannot reduce {container!r}")
    return monoid.identity if out is None else out


def _reduce_into_scalar(
    s: Scalar,
    accum,
    op: Union[Monoid, BinaryOp],
    container,
) -> Scalar:
    check_context(s, container)
    if isinstance(container, Matrix):
        values = container._capture().values
    elif isinstance(container, Vector):
        values = container._capture().values
    else:
        raise DomainMismatchError(f"cannot reduce {container!r}")

    if isinstance(op, Monoid):
        folded = None if len(values) == 0 else op.reduce_array(
            op.type.coerce_array(values)
        )
    elif isinstance(op, BinaryOp):
        require(
            op.in1_type == op.in2_type == op.out_type, DomainMismatchError,
            "binop reduce requires an associative T x T -> T operator",
        )
        folded = _k.reduce_with_binop(values, op)
    else:
        raise DomainMismatchError(f"reducer must be Monoid or BinaryOp, got {op!r}")

    if accum is not None and folded is not None and s.nvals():
        folded = accum.scalar(
            accum.in1_type.coerce_scalar(s.extract_element()),
            accum.in2_type.coerce_scalar(folded),
        )
    if accum is not None and folded is None:
        # Nothing to fold: accumulation leaves the target unchanged.
        return s
    s._store_kernel_result(folded)
    return s


def reduce(
    out,
    *args,
    desc: Descriptor | None = None,
):
    """Polymorphic ``GrB_reduce``.

    * ``reduce(w, mask, accum, monoid, A[, desc])`` → vector
    * ``reduce(s, accum, op, u_or_A[, desc])`` → GrB_Scalar (Table II)
    * ``reduce(monoid, u_or_A)`` → plain value (typed variant)
    """
    if isinstance(out, Vector):
        a = list(args)
        if len(a) == 5 and isinstance(a[4], (Descriptor, type(None))):
            desc = a.pop()
        require(len(a) == 4, DomainMismatchError,
                "vector reduce: (w, mask, accum, monoid, A[, desc])")
        return reduce_to_vector(out, a[0], a[1], a[2], a[3], desc)
    if isinstance(out, Scalar):
        a = list(args)
        if len(a) == 4 and isinstance(a[3], (Descriptor, type(None))):
            desc = a.pop()
        require(len(a) == 3, DomainMismatchError,
                "scalar reduce: (s, accum, op, container[, desc])")
        return _reduce_into_scalar(out, check_accum(a[0]), a[1], a[2])
    if isinstance(out, Monoid):
        require(len(args) == 1, DomainMismatchError,
                "typed reduce: (monoid, container)")
        return reduce_scalar(out, args[0])
    raise DomainMismatchError(f"no reduce variant for {out!r}")

"""``GrB_extract`` — sub-container extraction.

Variants (dispatched on output/input kinds, as in the C polymorphic
interface):

* ``extract(w, mask, accum, u, I, desc)``          — w = u(I)
* ``extract(C, Mask, accum, A, I, J, desc)``       — C = A(I, J)
* ``extract(w, mask, accum, A, I, j, desc)``       — w = A(I, j)  (Col_extract)

Index lists may be ``ALL`` (``None``) and may contain duplicates.
``Col_extract`` honours INP0-transpose: with ``DESC_T0`` it extracts a
*row* of A.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.descriptor import Descriptor
from ..core.errors import DimensionMismatchError, DomainMismatchError
from ..core.matrix import Matrix
from ..core.vector import Vector
from ..internals import extract as _k
from ..internals.maskaccum import mat_write_back, vec_write_back
from .common import check_accum, check_context, require, resolve_desc

__all__ = ["extract", "ALL"]

#: ``GrB_ALL`` — pass as an index list to mean "all indices".
ALL = None


def _index_len(indices, full: int) -> int:
    return full if indices is None else len(np.asarray(indices).reshape(-1))


def extract(
    out,
    mask,
    accum,
    a,
    indices: Sequence[int] | None,
    second: Any = None,
    desc: Descriptor | None = None,
):
    """Polymorphic ``GrB_extract`` (see module docstring)."""
    if isinstance(second, Descriptor) and desc is None:
        desc, second = second, None
    d = resolve_desc(desc)
    accum = check_accum(accum)
    check_context(out, mask, a)
    wb = dict(
        complement=d.mask_complement,
        structure=d.mask_structure,
        replace=d.replace,
    )

    # w = u(I)
    if isinstance(out, Vector) and isinstance(a, Vector):
        require(second is None, DomainMismatchError,
                "vector extract takes one index list")
        require(out.size == _index_len(indices, a.size), DimensionMismatchError,
                "extract output size != |I|")
        if mask is not None:
            require(mask.size == out.size, DimensionMismatchError,
                    "mask size must match output")
        u_data = a._capture()
        mask_data = mask._capture() if mask is not None else None
        out_type = out.type
        idx = None if indices is None else np.asarray(indices, dtype=np.int64)

        def thunk(c):
            t = _k.vec_extract(u_data, idx)
            return vec_write_back(c, t, out_type, mask_data, accum, **wb)

        out._submit(thunk, "extract(vector)")
        return out

    # C = A(I, J)
    if isinstance(out, Matrix) and isinstance(a, Matrix):
        in_shape = (a.ncols, a.nrows) if d.transpose0 else (a.nrows, a.ncols)
        nr = _index_len(indices, in_shape[0])
        nc = _index_len(second, in_shape[1])
        require((out.nrows, out.ncols) == (nr, nc), DimensionMismatchError,
                f"extract output shape {(out.nrows, out.ncols)} != {(nr, nc)}")
        if mask is not None:
            require((mask.nrows, mask.ncols) == (out.nrows, out.ncols),
                    DimensionMismatchError, "mask shape must match output")
        a_data = a._capture()
        mask_data = mask._capture() if mask is not None else None
        out_type = out.type
        tran = d.transpose0
        ridx = None if indices is None else np.asarray(indices, dtype=np.int64)
        cidx = None if second is None else np.asarray(second, dtype=np.int64)

        def thunk(c):
            src = a_data.transpose() if tran else a_data
            t = _k.mat_extract(src, ridx, cidx)
            return mat_write_back(c, t, out_type, mask_data, accum, **wb)

        out._submit(thunk, "extract(matrix)")
        return out

    # w = A(I, j)
    if isinstance(out, Vector) and isinstance(a, Matrix):
        require(isinstance(second, (int, np.integer)), DomainMismatchError,
                "Col_extract requires an integer column index")
        in_shape = (a.ncols, a.nrows) if d.transpose0 else (a.nrows, a.ncols)
        require(out.size == _index_len(indices, in_shape[0]),
                DimensionMismatchError, "extract output size != |I|")
        if mask is not None:
            require(mask.size == out.size, DimensionMismatchError,
                    "mask size must match output")
        a_data = a._capture()
        mask_data = mask._capture() if mask is not None else None
        out_type = out.type
        tran = d.transpose0
        col = int(second)
        ridx = None if indices is None else np.asarray(indices, dtype=np.int64)

        def thunk(c):
            src = a_data.transpose() if tran else a_data
            t = _k.mat_extract_col(src, col, ridx)
            return vec_write_back(c, t, out_type, mask_data, accum, **wb)

        out._submit(thunk, "extract(col)")
        return out

    raise DomainMismatchError(
        f"no extract variant for output {type(out).__name__} and "
        f"input {type(a).__name__}"
    )

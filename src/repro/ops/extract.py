"""``GrB_extract`` — sub-container extraction.

Variants (dispatched on output/input kinds, as in the C polymorphic
interface):

* ``extract(w, mask, accum, u, I, desc)``          — w = u(I)
* ``extract(C, Mask, accum, A, I, J, desc)``       — C = A(I, J)
* ``extract(w, mask, accum, A, I, j, desc)``       — w = A(I, j)  (Col_extract)

Index lists may be ``ALL`` (``None``) and may contain duplicates.
``Col_extract`` honours INP0-transpose: with ``DESC_T0`` it extracts a
*row* of A.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.descriptor import Descriptor
from ..core.errors import DimensionMismatchError, DomainMismatchError
from ..core.matrix import Matrix
from ..core.vector import Vector
from ..internals import extract as _k
from .common import (
    capture_source,
    check_accum,
    check_context,
    require,
    resolve_desc,
    writeback_closure,
)

__all__ = ["extract", "ALL"]

#: ``GrB_ALL`` — pass as an index list to mean "all indices".
ALL = None


def _index_len(indices, full: int) -> int:
    return full if indices is None else len(np.asarray(indices).reshape(-1))


def extract(
    out,
    mask,
    accum,
    a,
    indices: Sequence[int] | None,
    second: Any = None,
    desc: Descriptor | None = None,
):
    """Polymorphic ``GrB_extract`` (see module docstring)."""
    if isinstance(second, Descriptor) and desc is None:
        desc, second = second, None
    d = resolve_desc(desc)
    accum = check_accum(accum)
    check_context(out, mask, a)

    def _submit(is_vec, label, inputs, compute, mask_src):
        writeback, pure = writeback_closure(
            is_vec, out.type, mask_src, accum,
            complement=d.mask_complement,
            structure=d.mask_structure,
            replace=d.replace,
        )
        out._submit_op(
            kind="extract", label=label, inputs=inputs,
            compute=compute, writeback=writeback,
            out_type=out.type, pure=pure,
        )
        return out

    # w = u(I)
    if isinstance(out, Vector) and isinstance(a, Vector):
        require(second is None, DomainMismatchError,
                "vector extract takes one index list")
        require(out.size == _index_len(indices, a.size), DimensionMismatchError,
                "extract output size != |I|")
        if mask is not None:
            require(mask.size == out.size, DimensionMismatchError,
                    "mask size must match output")
        u_src = capture_source(a)
        mask_src = capture_source(mask)
        idx = None if indices is None else np.asarray(indices, dtype=np.int64)

        def compute(datas):
            return _k.vec_extract(datas[0], idx)

        inputs = [u_src] if mask_src is None else [u_src, mask_src]
        return _submit(True, "extract(vector)", inputs, compute, mask_src)

    # C = A(I, J)
    if isinstance(out, Matrix) and isinstance(a, Matrix):
        in_shape = (a.ncols, a.nrows) if d.transpose0 else (a.nrows, a.ncols)
        nr = _index_len(indices, in_shape[0])
        nc = _index_len(second, in_shape[1])
        require((out.nrows, out.ncols) == (nr, nc), DimensionMismatchError,
                f"extract output shape {(out.nrows, out.ncols)} != {(nr, nc)}")
        if mask is not None:
            require((mask.nrows, mask.ncols) == (out.nrows, out.ncols),
                    DimensionMismatchError, "mask shape must match output")
        a_src = capture_source(a)
        mask_src = capture_source(mask)
        tran = d.transpose0
        ridx = None if indices is None else np.asarray(indices, dtype=np.int64)
        cidx = None if second is None else np.asarray(second, dtype=np.int64)

        def compute(datas):
            src = datas[0].transpose() if tran else datas[0]
            return _k.mat_extract(src, ridx, cidx)

        inputs = [a_src] if mask_src is None else [a_src, mask_src]
        return _submit(False, "extract(matrix)", inputs, compute, mask_src)

    # w = A(I, j)
    if isinstance(out, Vector) and isinstance(a, Matrix):
        require(isinstance(second, (int, np.integer)), DomainMismatchError,
                "Col_extract requires an integer column index")
        in_shape = (a.ncols, a.nrows) if d.transpose0 else (a.nrows, a.ncols)
        require(out.size == _index_len(indices, in_shape[0]),
                DimensionMismatchError, "extract output size != |I|")
        if mask is not None:
            require(mask.size == out.size, DimensionMismatchError,
                    "mask size must match output")
        a_src = capture_source(a)
        mask_src = capture_source(mask)
        tran = d.transpose0
        col = int(second)
        ridx = None if indices is None else np.asarray(indices, dtype=np.int64)

        def compute(datas):
            src = datas[0].transpose() if tran else datas[0]
            return _k.mat_extract_col(src, col, ridx)

        inputs = [a_src] if mask_src is None else [a_src, mask_src]
        return _submit(True, "extract(col)", inputs, compute, mask_src)

    raise DomainMismatchError(
        f"no extract variant for output {type(out).__name__} and "
        f"input {type(a).__name__}"
    )

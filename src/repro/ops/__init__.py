"""The GraphBLAS operations layer (C-style argument order).

Every operation validates its arguments eagerly (API errors are never
deferred), captures its inputs, and defers or executes the computation
according to the output object's context mode.
"""

from .apply import apply
from .assign import assign, assign_col, assign_row
from .ewise import ewise_add, ewise_mult
from .extract import ALL, extract
from .kronecker import kronecker
from .mxm import mxm, mxv, vxm
from .reduce import reduce, reduce_scalar, reduce_to_vector
from .select import select
from .transpose import transpose

__all__ = [
    "apply",
    "assign",
    "assign_col",
    "assign_row",
    "ewise_add",
    "ewise_mult",
    "extract",
    "ALL",
    "kronecker",
    "mxm",
    "mxv",
    "vxm",
    "reduce",
    "reduce_scalar",
    "reduce_to_vector",
    "select",
    "transpose",
]

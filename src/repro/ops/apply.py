"""``GrB_apply`` — elementwise map over stored values, four flavours:

* **unary**: ``apply(w, mask, accum, unop, u, desc)``
* **bind-first** (Table II scalar variant):
  ``apply(w, mask, accum, binop, s, u, desc)`` computes ``binop(s, u_i)``
* **bind-second**: ``apply(w, mask, accum, binop, u, s, desc)``
* **index-unary** (§VIII-B): ``apply(w, mask, accum, iuop, u, s, desc)``
  computes ``f(u_i, i, 0, s)`` / ``f(a_ij, i, j, s)``.

Dispatch is positional, mirroring the C polymorphic interface; the
scalar ``s`` may be a plain value or a ``GrB_Scalar`` (Table II).
When the input matrix is transposed via the descriptor, index-unary
operators see post-transpose coordinates (§VIII-B).
"""

from __future__ import annotations

from typing import Any

from ..core.binaryop import BinaryOp
from ..core.descriptor import Descriptor
from ..core.errors import DimensionMismatchError, DomainMismatchError
from ..core.indexunaryop import IndexUnaryOp
from ..core.matrix import Matrix
from ..core.unaryop import UnaryOp
from ..core.vector import Vector
from .common import (
    capture_source,
    check_accum,
    check_context,
    check_output_cast,
    mask_metadata,
    require,
    resolve_desc,
    scalar_value,
    writeback_closure,
)

__all__ = ["apply"]


def _check_output(out, mask, inp, d) -> None:
    check_context(out, mask, inp)
    if isinstance(out, Vector):
        require(isinstance(inp, Vector), DomainMismatchError,
                "vector apply requires a vector input")
        require(out.size == inp.size, DimensionMismatchError,
                f"apply output size {out.size} != input {inp.size}")
        if mask is not None:
            require(mask.size == out.size, DimensionMismatchError,
                    "mask size must match output")
    else:
        require(isinstance(inp, Matrix), DomainMismatchError,
                "matrix apply requires a matrix input")
        in_shape = (inp.ncols, inp.nrows) if d.transpose0 else (inp.nrows, inp.ncols)
        require((out.nrows, out.ncols) == in_shape, DimensionMismatchError,
                f"apply output shape {(out.nrows, out.ncols)} != input {in_shape}")
        if mask is not None:
            require((mask.nrows, mask.ncols) == (out.nrows, out.ncols),
                    DimensionMismatchError, "mask shape must match output")


def _submit_stages(out, mask, accum, u, d, stages, label, *, op, kind="apply"):
    """Submit an apply/select-style node: a fusable stage pipeline over
    the input, then the standard write-back."""
    u_src = capture_source(u)
    mask_src = capture_source(mask)
    is_vec = isinstance(out, Vector)
    if not is_vec and d.transpose0:
        stages = [("transpose",)] + stages
    writeback, pure = writeback_closure(
        is_vec, out.type, mask_src, accum,
        complement=d.mask_complement,
        structure=d.mask_structure,
        replace=d.replace,
    )
    inputs = [u_src] if mask_src is None else [u_src, mask_src]
    out._submit_op(
        kind=kind,
        label=label,
        inputs=inputs,
        writeback=writeback,
        stages=stages,
        pipe_input=0,
        out_type=out.type,
        pure=pure,
        # Built-in operators are numpy ufuncs over already-validated
        # carriers: they cannot raise an execution error, so a COMPLETE
        # wait may leave the node deferred.
        complete_safe=pure and op.is_builtin,
        # Planner metadata: the write-back shape lets the pushdown pass
        # absorb this node's mask into a producing mxm-family kernel.
        mask_info=mask_metadata(
            mask_src, accum,
            complement=d.mask_complement,
            structure=d.mask_structure,
            replace=d.replace,
        ),
    )
    return out


def apply(
    out,
    mask,
    accum,
    op,
    arg1,
    arg2: Any = None,
    desc: Descriptor | None = None,
):
    """Polymorphic ``GrB_apply`` (see module docstring for flavours)."""
    # Allow the C calling style where desc is the last positional arg of
    # the unary variant: apply(w, mask, accum, unop, u, desc).
    if isinstance(arg2, Descriptor) and desc is None:
        desc, arg2 = arg2, None
    d = resolve_desc(desc)
    accum = check_accum(accum)

    if isinstance(op, UnaryOp):
        require(arg2 is None, DomainMismatchError,
                "unary apply takes exactly one input container")
        return _apply_unary(out, mask, accum, op, arg1, d)
    if isinstance(op, IndexUnaryOp):
        return _apply_index(out, mask, accum, op, arg1, arg2, d)
    if isinstance(op, BinaryOp):
        first_is_container = isinstance(arg1, (Vector, Matrix))
        second_is_container = isinstance(arg2, (Vector, Matrix))
        require(first_is_container != second_is_container, DomainMismatchError,
                "binary apply binds a scalar to exactly one operand side")
        if first_is_container:
            return _apply_bind2nd(out, mask, accum, op, arg1, arg2, d)
        return _apply_bind1st(out, mask, accum, op, arg1, arg2, d)
    raise DomainMismatchError(f"apply operator of unsupported kind: {op!r}")


def _apply_unary(out, mask, accum, op: UnaryOp, u, d):
    _check_output(out, mask, u, d)
    check_output_cast(op.out_type, out.type)
    return _submit_stages(
        out, mask, accum, u, d,
        [("unary", op, op.out_type)], "apply(unary)", op=op,
    )


def _apply_bind1st(out, mask, accum, op: BinaryOp, s, u, d):
    _check_output(out, mask, u, d)
    check_output_cast(op.out_type, out.type)
    sval = scalar_value(s, what="bind-first scalar")
    return _submit_stages(
        out, mask, accum, u, d,
        [("bind1st", op, sval, op.out_type)], "apply(bind1st)", op=op,
    )


def _apply_bind2nd(out, mask, accum, op: BinaryOp, u, s, d):
    _check_output(out, mask, u, d)
    check_output_cast(op.out_type, out.type)
    sval = scalar_value(s, what="bind-second scalar")
    return _submit_stages(
        out, mask, accum, u, d,
        [("bind2nd", op, sval, op.out_type)], "apply(bind2nd)", op=op,
    )


def _apply_index(out, mask, accum, op: IndexUnaryOp, u, s, d):
    """§VIII-B: w⟨m,r⟩ = w ⊙ f(u, ind(u), 1, s)."""
    _check_output(out, mask, u, d)
    check_output_cast(op.out_type, out.type)
    if isinstance(out, Vector) and op.uses_column and op.is_builtin:
        raise DomainMismatchError(
            f"{op.name} accesses the column index and is only defined for "
            "matrices (Table IV)"
        )
    sval = scalar_value(s, what="index-unary scalar")
    return _submit_stages(
        out, mask, accum, u, d,
        [("index", op, sval, op.out_type)], "apply(index)", op=op,
    )

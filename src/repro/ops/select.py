"""``GrB_select`` — the new functional-input-mask operation (§VIII-C).

    select(C, Mask, accum, f, A, s, desc)

``f`` is a boolean-returning index-unary operator; stored elements where
``f(a_ij, i, j, s)`` is true are kept (unchanged), others are
annihilated.  In the paper's notation:

    C⟨M, r⟩ = C ⊙ A[T]⟨f(A[T], ind(A[T]), 2, s)⟩
"""

from __future__ import annotations

from ..core.descriptor import Descriptor
from ..core.errors import DimensionMismatchError, DomainMismatchError
from ..core.indexunaryop import IndexUnaryOp
from ..core.matrix import Matrix
from ..core.types import BOOL
from ..core.vector import Vector
from .apply import _submit_stages
from .common import (
    check_accum,
    check_context,
    check_output_cast,
    require,
    resolve_desc,
    scalar_value,
)

__all__ = ["select"]


def select(
    out,
    mask,
    accum,
    op: IndexUnaryOp,
    a,
    s,
    desc: Descriptor | None = None,
):
    """Polymorphic ``GrB_select`` (vector and matrix variants)."""
    d = resolve_desc(desc)
    accum = check_accum(accum)
    require(isinstance(op, IndexUnaryOp), DomainMismatchError,
            f"select requires an IndexUnaryOp, got {op!r}")
    require(op.out_type == BOOL or not op.is_builtin, DomainMismatchError,
            f"select operator must return BOOL, got {op.out_type.name}")
    check_output_cast(a.type, out.type)
    check_context(out, mask, a)

    if isinstance(out, Vector):
        require(isinstance(a, Vector), DomainMismatchError,
                "vector select requires a vector input")
        if op.uses_column and op.is_builtin:
            raise DomainMismatchError(
                f"{op.name} accesses the column index and is only defined "
                "for matrices (Table IV)"
            )
        require(out.size == a.size, DimensionMismatchError,
                f"select output size {out.size} != input {a.size}")
        if mask is not None:
            require(mask.size == out.size, DimensionMismatchError,
                    "mask size must match output")
    elif isinstance(out, Matrix):
        require(isinstance(a, Matrix), DomainMismatchError,
                "matrix select requires a matrix input")
        in_shape = (a.ncols, a.nrows) if d.transpose0 else (a.nrows, a.ncols)
        require((out.nrows, out.ncols) == in_shape, DimensionMismatchError,
                f"select output shape {(out.nrows, out.ncols)} != input {in_shape}")
        if mask is not None:
            require((mask.nrows, mask.ncols) == (out.nrows, out.ncols),
                    DimensionMismatchError, "mask shape must match output")
    else:
        raise DomainMismatchError(f"select output must be Vector/Matrix, got {out!r}")

    sval = scalar_value(s, what="select scalar")
    # _submit_stages attaches the planner metadata (mask/accum shape)
    # that lets a masked select's filter be pushed into a producing
    # mxm-family kernel by the planner's pushdown pass.
    return _submit_stages(
        out, mask, accum, a, d,
        [("select", op, sval)], "select", op=op, kind="select",
    )

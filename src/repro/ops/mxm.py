"""Matrix multiply operations: ``mxm``, ``mxv``, ``vxm``.

C-style argument order matches the specification:

    ``mxm(C, Mask, accum, semiring, A, B, desc)``

Descriptor ``INP0``/``INP1`` transpose the matrix inputs; the mask and
accumulator follow the standard write-back.  When the shared context
resolves ``nthreads > 1``, ``mxm`` runs the row-partitioned parallel
kernel (§IV resource scoping).
"""

from __future__ import annotations

from ..core.descriptor import Descriptor
from ..core.errors import DimensionMismatchError, DomainMismatchError
from ..core.matrix import Matrix
from ..core.semiring import Semiring
from ..core.vector import Vector
from ..internals import config
from ..internals import mxm as _k
from ..internals.maskaccum import mat_mask_keys, vec_mask_keys
from ..internals.parallel import parallel_mxm
from .common import (
    capture_source,
    check_accum,
    check_context,
    check_output_cast,
    mask_metadata,
    require,
    resolve_desc,
    writeback_closure,
)

__all__ = ["mxm", "mxv", "vxm"]


def _check_semiring(semiring: Semiring) -> None:
    if not isinstance(semiring, Semiring):
        raise DomainMismatchError(f"expected a Semiring, got {semiring!r}")


def mxm(
    C: Matrix,
    Mask: Matrix | None,
    accum,
    semiring: Semiring,
    A: Matrix,
    B: Matrix,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_mxm``: C⟨Mask⟩ = accum(C, A ⊕.⊗ B)."""
    d = resolve_desc(desc)
    _check_semiring(semiring)
    accum = check_accum(accum)
    check_output_cast(semiring.out_type, C.type)
    ctx = check_context(C, Mask, A, B)

    a_shape = (A.ncols, A.nrows) if d.transpose0 else (A.nrows, A.ncols)
    b_shape = (B.ncols, B.nrows) if d.transpose1 else (B.nrows, B.ncols)
    require(
        a_shape[1] == b_shape[0], DimensionMismatchError,
        f"mxm inner dimensions: {a_shape} x {b_shape}",
    )
    require(
        (C.nrows, C.ncols) == (a_shape[0], b_shape[1]), DimensionMismatchError,
        f"mxm output shape {(C.nrows, C.ncols)} != {(a_shape[0], b_shape[1])}",
    )
    if Mask is not None:
        require(
            (Mask.nrows, Mask.ncols) == (C.nrows, C.ncols),
            DimensionMismatchError, "mask shape must match output",
        )

    a_src = capture_source(A)
    b_src = capture_source(B) if B is not A else a_src
    mask_src = capture_source(Mask)
    chunk_rows = ctx.chunk_rows
    tran0, tran1 = d.transpose0, d.transpose1
    comp, struct = d.mask_complement, d.mask_structure

    def compute(datas, pushed_keys=None, pushed_comp=False):
        a = datas[0].transpose() if tran0 else datas[0]
        b = datas[1].transpose() if tran1 else datas[1]
        # Masked-SpGEMM push-down: no product the mask excludes can
        # reach the output, so filter inside the kernel before the
        # sort/compress phase (complemented masks filter inverted —
        # the visited-set pattern of BFS).  The filter is either this
        # op's own mask or one the planner pushed down from a masked
        # consumer (``pushed_keys``; never both — the pushdown pass
        # only targets unmasked pure producers).
        mask_keys, mask_comp = pushed_keys, pushed_comp
        if mask_src is not None and config.MASK_PUSHDOWN:
            mask_keys = mat_mask_keys(mask_src.resolve(), struct)
            mask_comp = comp
        # Resolved at execution time (not submit time): a context that
        # degraded to serial while this node was deferred must not
        # re-enter the parallel path.
        nthreads = 1 if ctx.is_degraded else ctx.nthreads
        return parallel_mxm(a, b, semiring, nthreads, chunk_rows=chunk_rows,
                            mask_keys=mask_keys, mask_complement=mask_comp,
                            ctx=ctx)

    writeback, pure = writeback_closure(
        False, C.type, mask_src, accum,
        complement=comp, structure=struct, replace=d.replace,
    )
    inputs = [a_src, b_src] if mask_src is None else [a_src, b_src, mask_src]
    C._submit_op(
        kind="mxm", label="mxm", inputs=inputs,
        compute=compute, writeback=writeback,
        out_type=C.type, pure=pure,
        opkey=("mxm", id(semiring), tran0, tran1),
        cse_safe=semiring.is_builtin,
        mask_info=mask_metadata(
            mask_src, accum,
            complement=comp, structure=struct, replace=d.replace,
        ),
        pushable=True,
    )
    return C


def mxv(
    w: Vector,
    mask: Vector | None,
    accum,
    semiring: Semiring,
    A: Matrix,
    u: Vector,
    desc: Descriptor | None = None,
) -> Vector:
    """``GrB_mxv``: w⟨mask⟩ = accum(w, A ⊕.⊗ u)."""
    d = resolve_desc(desc)
    _check_semiring(semiring)
    accum = check_accum(accum)
    check_output_cast(semiring.out_type, w.type)
    check_context(w, mask, A, u)

    a_shape = (A.ncols, A.nrows) if d.transpose0 else (A.nrows, A.ncols)
    require(a_shape[1] == u.size, DimensionMismatchError,
            f"mxv inner dimension: {a_shape} x {u.size}")
    require(w.size == a_shape[0], DimensionMismatchError,
            f"mxv output size {w.size} != {a_shape[0]}")
    if mask is not None:
        require(mask.size == w.size, DimensionMismatchError,
                "mask size must match output")

    a_src = capture_source(A)
    u_src = capture_source(u)
    mask_src = capture_source(mask)
    tran0 = d.transpose0
    comp, struct = d.mask_complement, d.mask_structure

    def compute(datas, pushed_keys=None, pushed_comp=False):
        a = datas[0].transpose() if tran0 else datas[0]
        mask_keys, mask_comp = pushed_keys, pushed_comp
        if mask_src is not None and config.MASK_PUSHDOWN:
            mask_keys = vec_mask_keys(mask_src.resolve(), struct)
            mask_comp = comp
        return _k.mxv(a, datas[1], semiring, mask_keys, mask_comp)

    writeback, pure = writeback_closure(
        True, w.type, mask_src, accum,
        complement=comp, structure=struct, replace=d.replace,
    )

    # Small-op batching eligibility: a pure (unmasked, unaccumulated),
    # untransposed builtin-semiring product over a *committed* matrix
    # capture.  Equal keys ⇒ the very same committed carrier (versioned
    # handle identity) and semiring, so many such nodes coalesce into
    # one blocked multi-vector kernel at scheduling time.
    batch_key = batch_compute = None
    if (pure and not tran0 and semiring.is_builtin
            and a_src.node is None and a_src.vkey is not None):
        batch_key = ("mxv", a_src.vkey, id(semiring))

        def batch_compute(a, us):
            return _k.mxv_multi(a, us, semiring)

    inputs = [a_src, u_src] if mask_src is None else [a_src, u_src, mask_src]
    w._submit_op(
        kind="mxv", label="mxv", inputs=inputs,
        compute=compute, writeback=writeback,
        out_type=w.type, pure=pure,
        opkey=("mxv", id(semiring), tran0),
        cse_safe=semiring.is_builtin,
        mask_info=mask_metadata(
            mask_src, accum,
            complement=comp, structure=struct, replace=d.replace,
        ),
        pushable=True,
        batch_key=batch_key,
        batch_compute=batch_compute,
    )
    return w


def vxm(
    w: Vector,
    mask: Vector | None,
    accum,
    semiring: Semiring,
    u: Vector,
    A: Matrix,
    desc: Descriptor | None = None,
) -> Vector:
    """``GrB_vxm``: w'⟨mask'⟩ = accum(w', u' ⊕.⊗ A).

    The descriptor's INP1 transposes A (the second input).
    """
    d = resolve_desc(desc)
    _check_semiring(semiring)
    accum = check_accum(accum)
    check_output_cast(semiring.out_type, w.type)
    check_context(w, mask, u, A)

    a_shape = (A.ncols, A.nrows) if d.transpose1 else (A.nrows, A.ncols)
    require(u.size == a_shape[0], DimensionMismatchError,
            f"vxm inner dimension: {u.size} x {a_shape}")
    require(w.size == a_shape[1], DimensionMismatchError,
            f"vxm output size {w.size} != {a_shape[1]}")
    if mask is not None:
        require(mask.size == w.size, DimensionMismatchError,
                "mask size must match output")

    a_src = capture_source(A)
    u_src = capture_source(u)
    mask_src = capture_source(mask)
    tran1 = d.transpose1
    comp, struct = d.mask_complement, d.mask_structure

    def compute(datas, pushed_keys=None, pushed_comp=False):
        a = datas[0].transpose() if tran1 else datas[0]
        mask_keys, mask_comp = pushed_keys, pushed_comp
        if mask_src is not None and config.MASK_PUSHDOWN:
            mask_keys = vec_mask_keys(mask_src.resolve(), struct)
            mask_comp = comp
        return _k.vxm(datas[1], a, semiring, mask_keys, mask_comp)

    writeback, pure = writeback_closure(
        True, w.type, mask_src, accum,
        complement=comp, structure=struct, replace=d.replace,
    )
    inputs = [a_src, u_src] if mask_src is None else [a_src, u_src, mask_src]
    w._submit_op(
        kind="vxm", label="vxm", inputs=inputs,
        compute=compute, writeback=writeback,
        out_type=w.type, pure=pure,
        opkey=("vxm", id(semiring), tran1),
        cse_safe=semiring.is_builtin,
        mask_info=mask_metadata(
            mask_src, accum,
            complement=comp, structure=struct, replace=d.replace,
        ),
        pushable=True,
    )
    return w

"""``GrB_kronecker``: C⟨Mask⟩ = accum(C, kron(A, B)).

The operator may be a ``BinaryOp``, ``Monoid`` (its op), or ``Semiring``
(its multiply op), as in the specification.
"""

from __future__ import annotations

from ..core.binaryop import BinaryOp
from ..core.descriptor import Descriptor
from ..core.errors import DimensionMismatchError, DomainMismatchError
from ..core.matrix import Matrix
from ..core.monoid import Monoid
from ..core.semiring import Semiring
from ..internals.kron import kronecker as _kron
from .common import (
    capture_source,
    check_accum,
    check_context,
    require,
    resolve_desc,
    writeback_closure,
)

__all__ = ["kronecker"]


def _resolve_op(op) -> BinaryOp:
    if isinstance(op, BinaryOp):
        return op
    if isinstance(op, Monoid):
        return op.op
    if isinstance(op, Semiring):
        return op.mult
    raise DomainMismatchError(
        f"kronecker operator must be BinaryOp/Monoid/Semiring, got {op!r}"
    )


def kronecker(
    C: Matrix,
    Mask: Matrix | None,
    accum,
    op,
    A: Matrix,
    B: Matrix,
    desc: Descriptor | None = None,
) -> Matrix:
    d = resolve_desc(desc)
    binop = _resolve_op(op)
    accum = check_accum(accum)
    check_context(C, Mask, A, B)
    a_shape = (A.ncols, A.nrows) if d.transpose0 else (A.nrows, A.ncols)
    b_shape = (B.ncols, B.nrows) if d.transpose1 else (B.nrows, B.ncols)
    out_shape = (a_shape[0] * b_shape[0], a_shape[1] * b_shape[1])
    require((C.nrows, C.ncols) == out_shape, DimensionMismatchError,
            f"kronecker output shape {(C.nrows, C.ncols)} != {out_shape}")
    if Mask is not None:
        require((Mask.nrows, Mask.ncols) == (C.nrows, C.ncols),
                DimensionMismatchError, "mask shape must match output")

    a_src = capture_source(A)
    b_src = capture_source(B) if B is not A else a_src
    mask_src = capture_source(Mask)
    tran0, tran1 = d.transpose0, d.transpose1

    def compute(datas):
        a = datas[0].transpose() if tran0 else datas[0]
        b = datas[1].transpose() if tran1 else datas[1]
        return _kron(a, b, binop, binop.out_type)

    writeback, pure = writeback_closure(
        False, C.type, mask_src, accum,
        complement=d.mask_complement,
        structure=d.mask_structure,
        replace=d.replace,
    )
    inputs = [a_src, b_src] if mask_src is None else [a_src, b_src, mask_src]
    C._submit_op(
        kind="kronecker", label="kronecker", inputs=inputs,
        compute=compute, writeback=writeback,
        out_type=C.type, pure=pure,
    )
    return C

"""``GrB_transpose``: C⟨Mask⟩ = accum(C, A')."""

from __future__ import annotations

from ..core.descriptor import Descriptor
from ..core.errors import DimensionMismatchError
from ..core.matrix import Matrix
from .common import (
    capture_source,
    check_accum,
    check_context,
    check_output_cast,
    require,
    resolve_desc,
    writeback_closure,
)

__all__ = ["transpose"]


def transpose(
    C: Matrix,
    Mask: Matrix | None,
    accum,
    A: Matrix,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_transpose``.

    Note the droll corner the spec preserves: INP0-transpose on the
    input of a transpose cancels out — ``DESC_T0`` makes this a masked
    *copy* of A.
    """
    d = resolve_desc(desc)
    accum = check_accum(accum)
    check_output_cast(A.type, C.type)
    check_context(C, Mask, A)
    in_shape = (A.nrows, A.ncols) if d.transpose0 else (A.ncols, A.nrows)
    require((C.nrows, C.ncols) == in_shape, DimensionMismatchError,
            f"transpose output shape {(C.nrows, C.ncols)} != {in_shape}")
    if Mask is not None:
        require((Mask.nrows, Mask.ncols) == (C.nrows, C.ncols),
                DimensionMismatchError, "mask shape must match output")

    a_src = capture_source(A)
    mask_src = capture_source(Mask)
    writeback, pure = writeback_closure(
        False, C.type, mask_src, accum,
        complement=d.mask_complement,
        structure=d.mask_structure,
        replace=d.replace,
    )
    # INP0-transpose cancels the operation's own transpose; the empty
    # stage list is a (masked) copy, and explicit transpose stages can
    # further cancel against neighbouring chain links in fusion.
    stages = [] if d.transpose0 else [("transpose",)]
    C._submit_op(
        kind="transpose",
        label="transpose",
        inputs=[a_src] if mask_src is None else [a_src, mask_src],
        writeback=writeback,
        stages=stages,
        pipe_input=0,
        out_type=C.type,
        pure=pure,
        complete_safe=pure,
    )
    return C

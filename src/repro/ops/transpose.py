"""``GrB_transpose``: C⟨Mask⟩ = accum(C, A')."""

from __future__ import annotations

from ..core.descriptor import Descriptor
from ..core.errors import DimensionMismatchError
from ..core.matrix import Matrix
from ..internals.maskaccum import mat_write_back
from .common import (
    check_accum,
    check_context,
    check_output_cast,
    require,
    resolve_desc,
)

__all__ = ["transpose"]


def transpose(
    C: Matrix,
    Mask: Matrix | None,
    accum,
    A: Matrix,
    desc: Descriptor | None = None,
) -> Matrix:
    """``GrB_transpose``.

    Note the droll corner the spec preserves: INP0-transpose on the
    input of a transpose cancels out — ``DESC_T0`` makes this a masked
    *copy* of A.
    """
    d = resolve_desc(desc)
    accum = check_accum(accum)
    check_output_cast(A.type, C.type)
    check_context(C, Mask, A)
    in_shape = (A.nrows, A.ncols) if d.transpose0 else (A.ncols, A.nrows)
    require((C.nrows, C.ncols) == in_shape, DimensionMismatchError,
            f"transpose output shape {(C.nrows, C.ncols)} != {in_shape}")
    if Mask is not None:
        require((Mask.nrows, Mask.ncols) == (C.nrows, C.ncols),
                DimensionMismatchError, "mask shape must match output")

    a_data = A._capture()
    mask_data = Mask._capture() if Mask is not None else None
    out_type = C.type
    tran = d.transpose0
    wb = dict(
        complement=d.mask_complement,
        structure=d.mask_structure,
        replace=d.replace,
    )

    def thunk(c):
        t = a_data if tran else a_data.transpose()
        return mat_write_back(c, t, out_type, mask_data, accum, **wb)

    C._submit(thunk, "transpose")
    return C

"""Admission control: bounded queue + per-tenant caps + load shedding.

The §V error model already has the right shape for an overloaded
server: ``GrB_INSUFFICIENT_SPACE`` is a *transient* execution error —
"may succeed on re-invocation" — so a shed query raises
:class:`ServiceOverloadError` (a subclass) instead of queueing forever.
Clients see the same typed, retryable signal a kernel under memory
pressure produces, and the retry ladder semantics carry over unchanged.
"""

from __future__ import annotations

import threading

from ..core.errors import InsufficientSpaceError
from ..engine.stats import STATS

__all__ = ["ServiceOverloadError", "AdmissionController"]


class ServiceOverloadError(InsufficientSpaceError):
    """Typed load-shed rejection (``GrB_INSUFFICIENT_SPACE`` flavour).

    Marked transient: by §V a re-invocation may succeed, which is
    exactly the client contract for shed load.
    """

    def __init__(self, message: str, tenant: str = "", reason: str = ""):
        super().__init__(message)
        self.transient = True
        self.tenant = tenant
        self.reason = reason


class AdmissionController:
    """Bounded in-flight accounting, globally and per tenant.

    ``try_admit`` either reserves a slot or raises
    :class:`ServiceOverloadError` immediately — there is no unbounded
    wait state.  Callers must pair every successful admit with a
    ``release`` (the server does so in its dispatcher).
    """

    def __init__(self, max_pending: int = 64, per_tenant: int = 8):
        if max_pending < 1 or per_tenant < 1:
            raise ValueError("admission bounds must be positive")
        self.max_pending = int(max_pending)
        self.per_tenant = int(per_tenant)
        self._lock = threading.Lock()
        self._pending = 0
        self._by_tenant: dict[str, int] = {}
        self.rejected_total = 0
        self.rejected_by_tenant: dict[str, int] = {}

    def try_admit(self, tenant: str) -> None:
        """Reserve one slot for *tenant* or raise (shed) without queueing."""
        with self._lock:
            if self._pending >= self.max_pending:
                reason = "queue-full"
            elif self._by_tenant.get(tenant, 0) >= self.per_tenant:
                reason = "tenant-cap"
            else:
                self._pending += 1
                self._by_tenant[tenant] = self._by_tenant.get(tenant, 0) + 1
                return
            self.rejected_total += 1
            self.rejected_by_tenant[tenant] = (
                self.rejected_by_tenant.get(tenant, 0) + 1
            )
        STATS.bump("serve_rejected")
        raise ServiceOverloadError(
            f"query shed ({reason}): tenant {tenant!r} "
            f"[pending={self._pending}/{self.max_pending}, "
            f"tenant-cap={self.per_tenant}]",
            tenant=tenant, reason=reason,
        )

    def release(self, tenant: str) -> None:
        with self._lock:
            self._pending = max(0, self._pending - 1)
            n = self._by_tenant.get(tenant, 0) - 1
            if n > 0:
                self._by_tenant[tenant] = n
            else:
                self._by_tenant.pop(tenant, None)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "pending": self._pending,
                "max_pending": self.max_pending,
                "per_tenant": self.per_tenant,
                "by_tenant": dict(self._by_tenant),
                "rejected_total": self.rejected_total,
                "rejected_by_tenant": dict(self.rejected_by_tenant),
            }

"""Durability plane: checkpoint store + write-ahead journal (§VII).

A :class:`CheckpointStore` gives a :class:`~repro.serve.service.
GraphService` crash-durable state under one directory::

    <dir>/
      MANIFEST.json          versioned index: graphs, warm data, journal
      blobs/<digest>.grb     one §VII stream per distinct graph carrier
      blocks/<digest>.grb    warm algo-memo block carriers (optional)
      journal-<gen>.rjl      write-ahead journal of acknowledged writes

Every blob is the exact opaque stream ``formats/serialize.py`` produces
(versioned, checksummed), keyed by its content digest — identical
carriers dedupe, and a digest mismatch on load is detected before a
byte of graph data is trusted.

**Write-ahead journal.**  Mutations (and registrations) append one
framed record — ``magic | version | op | flags | crc32 | header-length
| body-length | json header | binary body`` — and are flushed (and, by
default, fsynced: ``JOURNAL_FSYNC``) *before* the in-memory publish,
so an acknowledged write is always recoverable.  Replay is
``journal-over-snapshot``: load the manifest's blobs, then apply the
current journal's records in sequence order.  A torn tail (crash mid-
append) parses as end-of-journal — everything before it was acked and
survives; the torn record was never acked.  Records are idempotent
upserts, so a write that was journaled but crashed before its ack
replays harmlessly (at-least-once).

**Checkpoint = compaction.**  ``write_checkpoint`` snapshots every
resident carrier into blobs, writes the manifest atomically
(tmp + rename), and rotates to a fresh journal generation — the old
journal's effects are folded into the snapshot.  A crash at any point
leaves either the old (manifest, journal) pair or the new one, never a
mix, because the manifest names the journal generation it pairs with.

**Warm data.**  Checkpoints optionally carry the service's memoized
algorithm blocks (keyed by graph + block kind + params, stored as
§VII carrier streams) and the cost model's calibrated kernel rates, so
a restored replica starts with a warm cache and a non-cold planner.

Crash-kill chaos: ``journal.append`` / ``journal.commit`` /
``checkpoint.write`` / ``restore.replay`` are fault-plane sites, so a
``kind="crash"`` schedule can kill the "process" at every durability
boundary and the recovery harness can prove parity.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from ..core.errors import InvalidObjectError, InvalidValueError
from ..core.types import from_name
from ..engine.stats import STATS
from ..faults.plane import maybe_inject
from ..formats.serialize import blob_digest, carrier_deserialize, carrier_serialize
from ..internals import config
from ..internals.containers import mat_from_coo

__all__ = [
    "CheckpointStore",
    "RestoreState",
    "apply_edges",
    "pack_record",
    "iter_records",
    "OP_REGISTER",
    "OP_MUTATE",
]

#: Journal record framing (little-endian):
#: magic(4) | version(u16) | op(u8) | flags(u8) | crc32(u32)
#: | header-length(u32) | body-length(u32) | header(json) | body
_JMAGIC = b"RJNL"
_JVERSION = 1
_JPREFIX = struct.Struct("<4sHBBIII")

#: Manifest format version (drift fails loudly on load).
MANIFEST_FORMAT = 1

OP_REGISTER = 1   # body = §VII graph blob
OP_MUTATE = 2     # body = rows:int64[] | cols:int64[] | values:vtype[]

_OPS = (OP_REGISTER, OP_MUTATE)


# ---------------------------------------------------------------------------
# Record framing
# ---------------------------------------------------------------------------

def pack_record(op: int, header: dict, body: bytes = b"") -> bytes:
    """Frame one journal record (checksum covers op+flags+header+body)."""
    if op not in _OPS:
        raise InvalidValueError(f"unknown journal op {op!r}")
    hdr = json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
    crc = zlib.crc32(bytes([op, 0]) + hdr + body) & 0xFFFFFFFF
    return _JPREFIX.pack(
        _JMAGIC, _JVERSION, op, 0, crc, len(hdr), len(body)
    ) + hdr + body


def _unpack_record(data: bytes, off: int) -> tuple[int, dict, bytes, int]:
    """Decode the record at *off*; returns (op, header, body, next_off).

    Raises :class:`InvalidObjectError` on any corruption — callers
    decide whether that means "torn tail, stop replay" or "reject".
    """
    if off + _JPREFIX.size > len(data):
        raise InvalidObjectError("journal record truncated (prefix)")
    magic, version, op, flags, crc, hlen, blen = _JPREFIX.unpack_from(data, off)
    if magic != _JMAGIC:
        raise InvalidObjectError("not a journal record (magic)")
    if version != _JVERSION:
        raise InvalidObjectError(
            f"journal version {version} != supported {_JVERSION}"
        )
    start = off + _JPREFIX.size
    end = start + hlen + blen
    if end > len(data):
        raise InvalidObjectError("journal record truncated (payload)")
    hdr_raw = bytes(data[start:start + hlen])
    body = bytes(data[start + hlen:end])
    if (zlib.crc32(bytes([op, flags]) + hdr_raw + body) & 0xFFFFFFFF) != crc:
        raise InvalidObjectError("journal record corrupt (checksum)")
    if op not in _OPS:
        raise InvalidObjectError(f"journal record has unknown op {op}")
    try:
        header = json.loads(hdr_raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise InvalidObjectError(f"journal header corrupt: {exc}") from None
    if not isinstance(header, dict):
        raise InvalidObjectError("journal header corrupt (not an object)")
    return op, header, body, end


def iter_records(
    data: bytes, *, strict: bool = False
) -> Iterator[tuple[int, dict, bytes]]:
    """Yield ``(op, header, body)`` for each intact record in *data*.

    Non-strict (replay) mode treats the first corrupt/truncated record
    as the journal's torn tail and stops — everything framed before it
    was durably acked.  ``strict=True`` (fuzz/validation) raises
    instead.
    """
    off = 0
    while off < len(data):
        try:
            op, header, body, off = _unpack_record(data, off)
        except InvalidObjectError:
            if strict:
                raise
            return
        yield op, header, body


# ---------------------------------------------------------------------------
# Mutations as pure carrier transforms
# ---------------------------------------------------------------------------

def apply_edges(d, rows, cols, vals):
    """Upsert a batch of weighted edges into a committed carrier.

    Pure and deterministic — the *same function* runs on the live write
    path and on journal replay, which is what makes a restored replica
    bit-identical to one that never crashed.  Last write wins on
    duplicates (within the delta and against the existing entries).
    The output format follows the deterministic
    :func:`~repro.internals.containers.choose_mat_format` policy, so a
    hypersparse tenant graph stays hypersparse through replay.

    The merge runs through the :mod:`~repro.internals.stream` delta
    kernel: only the batch itself is sorted (O(d log d)), the existing
    entries are shifted positionally — not the old concatenate-and-
    lexsort over the full COO stream, which charged O(nnz log nnz) per
    mutation no matter how small the batch.
    """
    from ..internals.stream import apply_delta, build_delta

    delta = build_delta(d, rows, cols, vals)
    if delta.n == 0:
        # Replay determinism: an empty batch still re-packs through the
        # format policy exactly like the pre-delta implementation did.
        return mat_from_coo(
            d.nrows, d.ncols, d.type,
            d.row_indices(), d.col_indices, d.values, presorted=True,
        )
    out = apply_delta(d, delta)
    out.check()
    return out


def _tuplify(value):
    """JSON round-trip turns tuples into lists; undo it recursively so
    rehydrated memo keys compare equal to freshly built ones."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class RestoreState:
    """What a checkpoint directory restores to: carriers + warm data."""

    def __init__(self) -> None:
        self.graphs: dict[str, Any] = {}        # name -> carrier
        self.blocks: dict[tuple, tuple] = {}    # (graph, kind, params) ->
        #                                         (carrier, cost_ms)
        self.calibration: dict | None = None
        self.replayed = 0


class CheckpointStore:
    """Digest-keyed snapshot blobs + a generational write-ahead journal."""

    def __init__(self, directory: str | os.PathLike, *, fsync: bool | None = None):
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        (self.dir / "blobs").mkdir(exist_ok=True)
        (self.dir / "blocks").mkdir(exist_ok=True)
        self._lock = threading.RLock()
        self._fsync = fsync
        self._gen = 0
        self._seq = 0
        self._fh = None
        manifest = self._read_manifest()
        if manifest is not None:
            self._gen = int(manifest.get("gen", 0))
            self._seq = int(manifest.get("seq", 0))
        # Continue numbering after any records already in the current
        # journal (a restarted replica appends, never overwrites).
        for _, header, _ in iter_records(self._read_journal()):
            self._seq = max(self._seq, int(header.get("seq", 0)))

    # -- paths / manifest -----------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.dir / "MANIFEST.json"

    def journal_path(self, gen: int | None = None) -> Path:
        g = self._gen if gen is None else gen
        return self.dir / f"journal-{g:06d}.rjl"

    def _read_manifest(self) -> dict | None:
        try:
            raw = self.manifest_path.read_text()
        except FileNotFoundError:
            return None
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise InvalidObjectError(f"checkpoint manifest corrupt: {exc}") from None
        if not isinstance(manifest, dict) \
                or manifest.get("format") != MANIFEST_FORMAT:
            raise InvalidObjectError(
                f"checkpoint manifest format "
                f"{manifest.get('format') if isinstance(manifest, dict) else '?'} "
                f"!= supported {MANIFEST_FORMAT}"
            )
        return manifest

    def _read_journal(self, gen: int | None = None) -> bytes:
        try:
            return self.journal_path(gen).read_bytes()
        except FileNotFoundError:
            return b""

    def has_state(self) -> bool:
        """True when the directory holds a restorable manifest."""
        return self.manifest_path.exists()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- journal writes -------------------------------------------------------

    def _journal_fh(self):
        # Caller holds self._lock.
        if self._fh is None:
            self._fh = open(self.journal_path(), "ab")
        return self._fh

    def _append(self, op: int, header: dict, body: bytes) -> int:
        with self._lock:
            self._seq += 1
            header = dict(header, seq=self._seq)
            record = pack_record(op, header, body)
            # Crash before the write: the record never existed and the
            # write was never acknowledged — nothing to recover.
            maybe_inject("journal.append", op=op, seq=self._seq)
            fh = self._journal_fh()
            fh.write(record)
            fh.flush()
            fsync = self._fsync
            if fsync is None:
                fsync = bool(config.get_option("JOURNAL_FSYNC"))
            if fsync:
                os.fsync(fh.fileno())
            # Crash after the flush but before the ack: the record is
            # durable and will replay (idempotent upsert, at-least-once).
            maybe_inject("journal.commit", op=op, seq=self._seq)
            STATS.bump("journal_appends")
            return self._seq

    def journal_register(self, name: str, blob: bytes) -> int:
        """WAL a graph registration (the full §VII blob rides along)."""
        return self._append(
            OP_REGISTER, {"graph": name, "digest": blob_digest(blob)}, blob
        )

    def journal_mutate(self, name: str, rows, cols, vals, vtype: str) -> int:
        """WAL one edge-upsert batch against graph *name*."""
        r = np.ascontiguousarray(np.asarray(rows, dtype=np.int64))
        c = np.ascontiguousarray(np.asarray(cols, dtype=np.int64))
        v = np.ascontiguousarray(
            np.asarray(vals, dtype=from_name(vtype).np_dtype)
        )
        header = {"graph": name, "n": int(len(r)), "vtype": vtype}
        body = r.tobytes() + c.tobytes() + v.tobytes()
        return self._append(OP_MUTATE, header, body)

    # -- checkpoint (compaction) ----------------------------------------------

    def _write_blob(self, subdir: str, blob: bytes) -> str:
        digest = blob_digest(blob)
        path = self.dir / subdir / f"{digest}.grb"
        if not path.exists():
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        return digest

    def write_checkpoint(
        self,
        graphs: dict[str, Any],
        *,
        blocks: dict[tuple, tuple] | None = None,
        calibration: dict | None = None,
        service: str = "svc",
    ) -> dict:
        """Snapshot *graphs* (name → carrier), rotate the journal.

        ``blocks`` maps ``(graph, kind, params)`` to ``(carrier,
        cost_ms)`` — the warm algo-memo payload.  Returns the manifest.
        """
        with self._lock:
            new_gen = self._gen + 1
            maybe_inject("checkpoint.write", gen=new_gen)
            graph_index: dict[str, dict] = {}
            for name, carrier in graphs.items():
                blob = carrier_serialize(carrier)
                digest = self._write_blob("blobs", blob)
                graph_index[name] = {
                    "digest": digest,
                    "nrows": carrier.nrows,
                    "ncols": carrier.ncols,
                    "nvals": carrier.nvals,
                }
            block_index: list[dict] = []
            for (gname, kind, params), (carrier, cost_ms) in (blocks or {}).items():
                if gname not in graph_index:
                    continue
                try:
                    # Round-trip now: params with non-JSON members (or a
                    # UDT carrier) make this one block unpersistable,
                    # never the whole checkpoint.
                    params_json = json.loads(json.dumps(list(params)))
                    blob = carrier_serialize(carrier)
                except (TypeError, ValueError, InvalidObjectError):
                    continue
                digest = self._write_blob("blocks", blob)
                block_index.append({
                    "graph": gname, "kind": kind, "params": params_json,
                    "digest": digest, "cost_ms": round(float(cost_ms), 6),
                })
            manifest = {
                "format": MANIFEST_FORMAT,
                "service": service,
                "gen": new_gen,
                "seq": self._seq,
                "journal": self.journal_path(new_gen).name,
                "graphs": graph_index,
                "blocks": block_index,
                "calibration": calibration or {},
            }
            # New (empty) journal first, manifest rename second: a crash
            # in between leaves the old manifest paired with the old
            # journal — still a consistent restore point.
            self.journal_path(new_gen).touch()
            tmp = self.manifest_path.with_suffix(".tmp")
            tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True))
            os.replace(tmp, self.manifest_path)
            old = self.journal_path(self._gen)
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            self._gen = new_gen
            if old != self.journal_path() and old.exists():
                old.unlink()
            STATS.bump("checkpoints_written")
            return manifest

    # -- restore --------------------------------------------------------------

    def _load_blob(self, subdir: str, digest: str):
        path = self.dir / subdir / f"{digest}.grb"
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            raise InvalidObjectError(
                f"checkpoint blob {digest} missing from {subdir}/"
            ) from None
        if blob_digest(blob) != digest:
            raise InvalidObjectError(
                f"checkpoint blob {digest} fails its digest"
            )
        return carrier_deserialize(blob)

    def load(self) -> RestoreState:
        """Snapshot + journal replay → the state an open service had.

        Pure data: the caller (``GraphService.restore``) publishes the
        carriers; this layer never touches contexts or handles.
        """
        state = RestoreState()
        manifest = self._read_manifest()
        if manifest is not None:
            for name, meta in manifest.get("graphs", {}).items():
                state.graphs[name] = self._load_blob("blobs", meta["digest"])
            for meta in manifest.get("blocks", []):
                try:
                    carrier = self._load_blob("blocks", meta["digest"])
                except InvalidObjectError:
                    continue  # warm data is best-effort, never fatal
                key = (meta["graph"], meta["kind"], _tuplify(meta["params"]))
                state.blocks[key] = (carrier, float(meta.get("cost_ms", 0.0)))
            cal = manifest.get("calibration") or None
            if isinstance(cal, dict) and cal:
                state.calibration = cal
        for op, header, body in iter_records(self._read_journal()):
            maybe_inject("restore.replay", op=op, seq=header.get("seq"))
            name = header.get("graph")
            if not isinstance(name, str):
                continue
            if op == OP_REGISTER:
                state.graphs[name] = carrier_deserialize(body)
            elif op == OP_MUTATE:
                base = state.graphs.get(name)
                if base is None:
                    continue  # mutation of a graph we never saw register
                n = int(header.get("n", 0))
                t = from_name(header["vtype"])
                if len(body) < 16 * n:
                    raise InvalidObjectError("journal mutate body truncated")
                rows = np.frombuffer(body, dtype=np.int64, count=n)
                cols = np.frombuffer(body, dtype=np.int64, count=n, offset=8 * n)
                vals = np.frombuffer(
                    body, dtype=t.np_dtype, count=n, offset=16 * n
                )
                state.graphs[name] = apply_edges(base, rows, cols, vals)
            state.replayed += 1
        STATS.bump("journal_replayed", state.replayed)
        return state

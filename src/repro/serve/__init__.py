"""Multi-tenant graph serving on hierarchical contexts (§IV applied).

The ROADMAP's north star is GraphBLAS under "heavy traffic from
millions of users"; this package is the serving layer that the §IV
context hierarchy was designed to carry:

* :class:`~repro.serve.service.GraphService` hosts N resident named
  graphs (immutable committed carriers) under one root context.
* :class:`~repro.serve.session.Session` binds one client/tenant to a
  child :class:`~repro.core.context.Context` with its own memo quota,
  worker share, and fault domain — §IV resource scoping as isolation.
* :class:`~repro.serve.server.GraphServer` is the asyncio front door:
  bounded queue, per-tenant concurrency caps, and load shedding with a
  typed ``GrB_INSUFFICIENT_SPACE``-style rejection
  (:class:`~repro.serve.admission.ServiceOverloadError`).
* :mod:`~repro.serve.batch` coalesces compatible queued queries —
  same-graph BFS into one multi-source ``msbfs`` submission, identical
  analytics into one shared execution — so one planner pass serves
  many clients (the Julia nonblocking-GraphBLAS motivation).

Isolation story: graph carriers are immutable, so per-tenant views
(``Matrix.from_data``) share the bytes while every derived object,
memo entry, worker pool, and degradation flag lives in the tenant's
own context.  A worker crash degrades *that* tenant to serial
execution; its siblings keep their threads, caches, and results.
"""

from .admission import AdmissionController, ServiceOverloadError
from .batch import coalesce
from .query import Query, QueryResult
from .server import GraphServer
from .service import GraphService
from .session import Session

__all__ = [
    "AdmissionController",
    "ServiceOverloadError",
    "coalesce",
    "Query",
    "QueryResult",
    "GraphServer",
    "GraphService",
    "Session",
]

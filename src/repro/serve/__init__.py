"""Multi-tenant graph serving on hierarchical contexts (§IV applied).

The ROADMAP's north star is GraphBLAS under "heavy traffic from
millions of users"; this package is the serving layer that the §IV
context hierarchy was designed to carry:

* :class:`~repro.serve.service.GraphService` hosts N resident named
  graphs (immutable committed carriers) under one root context.
* :class:`~repro.serve.session.Session` binds one client/tenant to a
  child :class:`~repro.core.context.Context` with its own memo quota,
  worker share, and fault domain — §IV resource scoping as isolation.
* :class:`~repro.serve.server.GraphServer` is the asyncio front door:
  bounded queue, per-tenant concurrency caps, and load shedding with a
  typed ``GrB_INSUFFICIENT_SPACE``-style rejection
  (:class:`~repro.serve.admission.ServiceOverloadError`).
* :mod:`~repro.serve.batch` coalesces compatible queued queries —
  same-graph BFS into one multi-source ``msbfs`` submission, identical
  analytics into one shared execution — so one planner pass serves
  many clients (the Julia nonblocking-GraphBLAS motivation).

* :mod:`~repro.serve.recovery` is the durability plane — §VII
  serialize streams as checkpoint blobs plus a write-ahead journal of
  acknowledged mutations; ``GraphService.restore`` replays
  journal-over-snapshot with zero lost acknowledged writes.
* :mod:`~repro.serve.health` closes the resilience loop with
  per-tenant circuit breakers: trip on failure streaks, shed typed and
  transient, half-open with a probe, restore the context on recovery.

Isolation story: graph carriers are immutable, so per-tenant views
(``Matrix.from_data``) share the bytes while every derived object,
memo entry, worker pool, and degradation flag lives in the tenant's
own context.  A worker crash degrades *that* tenant to serial
execution; its siblings keep their threads, caches, and results.
"""

from .admission import AdmissionController, ServiceOverloadError
from .batch import coalesce
from .health import CircuitBreaker, HealthMonitor, TenantBreakerOpenError
from .query import Query, QueryResult
from .recovery import CheckpointStore
from .server import GraphServer, ServiceShutdownError
from .service import GraphService
from .session import Session

__all__ = [
    "AdmissionController",
    "ServiceOverloadError",
    "ServiceShutdownError",
    "TenantBreakerOpenError",
    "CircuitBreaker",
    "HealthMonitor",
    "CheckpointStore",
    "coalesce",
    "Query",
    "QueryResult",
    "GraphServer",
    "GraphService",
    "Session",
]

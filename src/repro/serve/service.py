"""The graph service: resident graphs + tenant sessions + group runner.

``GraphService`` owns a small context tree::

    svc-root                     (service root, child of top-level)
    ├── svc-batch                (shared batch context, own fault domain)
    ├── sess-<tenant-a>          (one child context per session)
    └── sess-<tenant-b>

Resident graphs are stored as *committed carriers* (immutable — the
result of forcing the registering matrix), so handing a tenant a view
is ``Matrix.from_data``: O(1), no copy, and the §IV same-context rule
is satisfied because every derived object lives in the viewing
context.  Shared msbfs submissions run in the batch context, whose
result memo keeps the graph's pattern block warm across windows.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..core.context import Context, Mode
from ..core.errors import InvalidValueError
from ..core.matrix import Matrix
from ..engine.stats import STATS
from .batch import Group, coalesce
from .query import Query, QueryResult
from .session import Session

__all__ = ["GraphService"]


class GraphService:
    """N resident named graphs served to M tenant sessions."""

    def __init__(self, mode: Mode = Mode.NONBLOCKING, name: str = "svc"):
        self.name = name
        self.root = Context.new(mode, name=f"{name}-root")
        self._batch_ctx = Context.new(
            mode, parent=self.root,
            exec_spec={"fault_domain": f"{name}:batch"},
            name=f"{name}-batch",
        )
        self._batch_ctx.local_stats()
        self._lock = threading.Lock()
        self._graphs: dict[str, Any] = {}      # name -> committed carrier
        self._batch_views: dict[str, Matrix] = {}
        self._sessions: dict[str, Session] = {}
        self._closed = False

    # -- resident graphs ------------------------------------------------------

    def register_graph(self, name: str, matrix: Matrix) -> dict:
        """Make *matrix*'s committed value resident under *name*.

        Forces the registering sequence and keeps the immutable carrier;
        later writes to the caller's matrix do not affect the resident
        value (re-register to publish a new snapshot).
        """
        carrier = matrix._capture()
        with self._lock:
            self._check_open()
            self._graphs[name] = carrier
            self._batch_views.pop(name, None)
        return {"name": name, "nrows": carrier.nrows,
                "ncols": carrier.ncols, "nvals": carrier.nvals}

    def graphs(self) -> dict[str, dict]:
        with self._lock:
            return {
                name: {"nrows": c.nrows, "ncols": c.ncols, "nvals": c.nvals}
                for name, c in self._graphs.items()
            }

    def graph_view(self, name: str, ctx: Context) -> Matrix:
        """A zero-copy view of resident graph *name* in *ctx*."""
        with self._lock:
            carrier = self._graphs.get(name)
        if carrier is None:
            raise InvalidValueError(f"no resident graph named {name!r}")
        return Matrix.from_data(carrier, ctx)

    def _batch_view(self, name: str) -> Matrix:
        with self._lock:
            view = self._batch_views.get(name)
        if view is None:
            view = self.graph_view(name, self._batch_ctx)
            with self._lock:
                self._batch_views[name] = view
        return view

    # -- sessions -------------------------------------------------------------

    def open_session(
        self,
        tenant: str,
        *,
        nthreads: int | None = None,
        chunk_rows: int | None = None,
        memo_capacity: int | None = None,
    ) -> Session:
        """Bind *tenant* to a fresh child context with its own quota.

        The spec keys are the tenant's §IV resource scope: worker share
        (``nthreads``), memo quota (``memo_capacity``), and a fault
        domain equal to the tenant name so targeted chaos stays inside.
        """
        spec: dict[str, Any] = {"fault_domain": tenant}
        if nthreads is not None:
            spec["nthreads"] = nthreads
        if chunk_rows is not None:
            spec["chunk_rows"] = chunk_rows
        if memo_capacity is not None:
            spec["memo_capacity"] = memo_capacity
        with self._lock:
            self._check_open()
            if tenant in self._sessions:
                raise InvalidValueError(
                    f"tenant {tenant!r} already has an open session"
                )
        ctx = Context.new(
            self.root.mode, parent=self.root, exec_spec=spec,
            name=f"sess-{tenant}",
        )
        session = Session(self, tenant, ctx)
        with self._lock:
            self._sessions[tenant] = session
        return session

    def _forget_session(self, session: Session) -> None:
        with self._lock:
            if self._sessions.get(session.tenant) is session:
                del self._sessions[session.tenant]

    def sessions(self) -> dict[str, Session]:
        with self._lock:
            return dict(self._sessions)

    # -- execution ------------------------------------------------------------

    def execute(self, session: Session, query: Query) -> QueryResult:
        """Run one query alone in the tenant's context (no batching)."""
        result = session.run(query)
        STATS.bump("serve_completed")
        return result

    def execute_window(self, entries: list) -> list:
        """Run a window of ``(session, query)`` pairs, coalesced.

        Returns one slot per entry, in submission order: a
        :class:`QueryResult` on success or the ``Exception`` that query
        raised (per-query failure isolation — one tenant's error never
        poisons a sibling's slot).
        """
        groups = coalesce(entries)
        results: list = [None] * len(entries)
        for group in groups:
            self._run_group(group, results)
        return results

    def _run_group(self, group: Group, results: list) -> None:
        if group.mode == "msbfs" and len(group.entries) > 1:
            if self._run_msbfs(group, results):
                return
        elif group.mode == "dedup" and len(group.entries) > 1:
            if self._run_dedup(group, results):
                return
        # Singles — and the serial fallback when a shared submission
        # failed: every rider re-runs alone in its own context, so a
        # fault in the shared path degrades to per-query §V semantics.
        for idx, session, query in group.entries:
            if results[idx] is not None:
                continue
            try:
                results[idx] = session.run(query)
            except Exception as exc:
                results[idx] = exc

    def _run_msbfs(self, group: Group, results: list) -> bool:
        """One multi-source traversal answering every rider; False to
        fall back to serial singles."""
        graph = group.entries[0][2].graph
        sources = [int(q.source) for _, _, q in group.entries]
        t0 = time.perf_counter()
        try:
            from ..algorithms import msbfs_levels

            view = self._batch_view(graph)
            levels = msbfs_levels(view, sources)
            rows, cols, vals = levels.extract_tuples()
        except Exception:
            return False
        per_row: list[dict[int, int]] = [{} for _ in group.entries]
        for r, c, v in zip(rows, cols, vals):
            per_row[int(r)][int(c)] = int(v)
        latency = (time.perf_counter() - t0) * 1e3
        for (idx, session, query), value in zip(group.entries, per_row):
            result = QueryResult(
                query, value, session.tenant,
                latency_ms=latency, batched=True,
            )
            session.record(result)
            results[idx] = result
        return True

    def _run_dedup(self, group: Group, results: list) -> bool:
        """Execute one representative; every rider shares the answer."""
        idx0, rep_session, rep_query = group.entries[0]
        t0 = time.perf_counter()
        try:
            value = rep_session._dispatch(rep_query)
        except Exception:
            return False
        latency = (time.perf_counter() - t0) * 1e3
        for idx, session, query in group.entries:
            result = QueryResult(
                query, value, session.tenant,
                latency_ms=latency, batched=True,
            )
            session.record(result)
            results[idx] = result
        return True

    # -- introspection / teardown ---------------------------------------------

    def tenant_stats(self) -> dict[str, dict]:
        """Per-tenant rollups (the serving ``engine_stats()`` story)."""
        out = {
            tenant: session.stats()
            for tenant, session in self.sessions().items()
        }
        out["<batch>"] = self._batch_ctx.local_stats().snapshot()
        return out

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidValueError(f"service {self.name!r} is closed")

    def close(self) -> None:
        """Free every session and the service's context tree."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
            self._graphs.clear()
            self._batch_views.clear()
        for session in sessions:
            session.ctx.free()
        self.root.free()

"""The graph service: resident graphs + tenant sessions + group runner.

``GraphService`` owns a small context tree::

    svc-root                     (service root, child of top-level)
    ├── svc-batch                (shared batch context, own fault domain)
    ├── sess-<tenant-a>          (one child context per session)
    └── sess-<tenant-b>

Resident graphs are stored as *committed carriers* (immutable — the
result of forcing the registering matrix), so handing a tenant a view
is ``Matrix.from_data``: O(1), no copy, and the §IV same-context rule
is satisfied because every derived object lives in the viewing
context.  Shared msbfs submissions run in the batch context, whose
result memo keeps the graph's pattern block warm across windows.

Durability: when a checkpoint directory is configured (ctor argument or
the ``CHECKPOINT_DIR`` knob) the service attaches a
:class:`~repro.serve.recovery.CheckpointStore`.  Registrations and
mutations are write-ahead journaled *before* they are acknowledged,
``checkpoint()`` compacts journal-into-snapshot (optionally carrying
warm algo-memo blocks and calibration rates), and
:meth:`GraphService.restore` rebuilds a bit-identical service from the
directory — snapshot plus journal replay, zero lost acknowledged
writes.

Health: :class:`~repro.serve.health.HealthMonitor` keeps a circuit
breaker per tenant; every execution outcome lands in
:meth:`_record_outcome`, and a breaker recovery restores the tenant's
context (clearing serial demotion) — the full degrade/recover loop.

Streaming ingest: :meth:`ingest_edges` *buffers* edge batches per graph
and commits them in bulk — one merged carrier build, **one** journal
record, one publish — either when the buffer reaches ``INGEST_BATCH``
edges or at an explicit :meth:`flush_ingest` (mutations, checkpoints,
and close flush implicitly).  Each publish records its normalized write
set in a bounded per-generation history, so a tenant session whose
cached view is a few generations behind can *patch* it forward in
place (``Matrix.update_batch``) instead of dropping the view — keeping
the view's uid, and with it every delta-patched algo-memo block, warm
across the write.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any

import numpy as np

from ..core.context import Context, Mode
from ..core.errors import InvalidValueError
from ..core.matrix import Matrix
from ..engine.stats import STATS
from ..internals import config
from ..internals.stream import apply_delta, build_delta, coerce_edges
from .batch import Group, coalesce
from .health import HealthMonitor
from .query import Query, QueryResult
from .recovery import CheckpointStore
from .session import Session

__all__ = ["GraphService"]

#: Publish generations of write-set history kept per graph; a session
#: further behind than this refetches the full carrier.
_DELTA_HISTORY = 64


class GraphService:
    """N resident named graphs served to M tenant sessions."""

    def __init__(
        self,
        mode: Mode = Mode.NONBLOCKING,
        name: str = "svc",
        checkpoint_dir: str | None = None,
        store_dir: str | None = None,
    ):
        self.name = name
        self.root = Context.new(mode, name=f"{name}-root")
        self._batch_ctx = Context.new(
            mode, parent=self.root,
            exec_spec={"fault_domain": f"{name}:batch"},
            name=f"{name}-batch",
        )
        self._batch_ctx.local_stats()
        self._lock = threading.Lock()
        self._graphs: dict[str, Any] = {}      # name -> committed carrier
        self._graph_gen: dict[str, int] = {}   # name -> publish generation
        self._batch_views: dict[str, Matrix] = {}
        self._sessions: dict[str, Session] = {}
        #: view uid -> (graph name, id(carrier)): lets the checkpointer
        #: attribute algo-memo entries (keyed by view uid) to the
        #: resident graph they were built over.
        self._view_uids: dict[int, tuple[str, int]] = {}
        #: (graph, kind, params) -> (carrier, cost_ms): warm blocks from
        #: a restore, seeded into each context that views the graph.
        self._warm_blocks: dict[tuple, tuple] = {}
        #: name -> [(rows, cols, vals), ...]: accepted-but-uncommitted
        #: ingest batches (validated on admission, durable at flush).
        self._ingest: dict[str, list] = {}
        self._ingest_pending: dict[str, int] = {}
        #: name -> OrderedDict[gen, (rows, cols, vals)]: the normalized
        #: write set that produced each publish generation.
        self._graph_deltas: dict[str, OrderedDict] = {}
        self.health = HealthMonitor()
        self._closed = False
        #: Serializes WAL-append + in-memory publish against
        #: snapshot + journal rotation, so a checkpoint can never fold
        #: away a journaled-but-unpublished write.
        self._dur_lock = threading.RLock()
        self._store: CheckpointStore | None = None
        if checkpoint_dir is None:
            checkpoint_dir = str(config.get_option("CHECKPOINT_DIR")) or None
        if checkpoint_dir:
            self._store = CheckpointStore(checkpoint_dir)
        # Warm-start store: opened at startup so a *fresh replica* —
        # no checkpoint of its own — still answers its first
        # pagerank/BFS with zero setup kernels from the cross-process
        # tier, and starts with seeded calibration.  Complementary to
        # the checkpoint store above, which only helps the same
        # deployment.
        from ..store import tier as store_tier

        if store_dir:
            self._warm_store = store_tier.activate(store_dir)
        else:
            self._warm_store = store_tier.active_store()

    # -- resident graphs ------------------------------------------------------

    def register_graph(self, name: str, matrix: Matrix) -> dict:
        """Make *matrix*'s committed value resident under *name*.

        Forces the registering sequence and keeps the immutable carrier;
        later writes to the caller's matrix do not affect the resident
        value (re-register to publish a new snapshot).  With a
        checkpoint store attached, the registration is journaled (full
        §VII blob) before this call returns.
        """
        carrier = matrix._capture()
        with self._dur_lock:
            with self._lock:
                self._check_open()
            # Buffered ingest against the old value commits first: an
            # accepted edge write is never silently superseded.
            self.flush_ingest(name)
            if self._store is not None:
                from ..formats.serialize import carrier_serialize

                self._store.journal_register(name, carrier_serialize(carrier))
            self._publish_carrier(name, carrier)
        return {"name": name, "nrows": carrier.nrows,
                "ncols": carrier.ncols, "nvals": carrier.nvals}

    def mutate_graph(self, name: str, rows, cols, vals) -> dict:
        """Upsert a batch of weighted edges into resident graph *name*.

        The mutation is validated and applied to a *new* carrier
        (resident carriers are immutable — live views keep reading the
        old one), write-ahead journaled, then published.  The ack a
        caller gets implies durability: a crash any instant later
        replays the write.  Sessions pick up the new value at their
        next ``view`` call (generation bump) — patching a cached view
        forward from the recorded write set when the history allows.
        Any buffered ingest for *name* commits first, preserving write
        order.
        """
        with self._dur_lock:
            self.flush_ingest(name)
            with self._lock:
                self._check_open()
                carrier = self._graphs.get(name)
            if carrier is None:
                raise InvalidValueError(f"no resident graph named {name!r}")
            new = self._commit_edges(name, carrier, rows, cols, vals)
        return {"name": name, "nrows": new.nrows,
                "ncols": new.ncols, "nvals": new.nvals}

    def _commit_edges(self, name: str, carrier, rows, cols, vals):
        """Merge + journal + publish one edge batch (holds ``_dur_lock``)."""
        delta = build_delta(carrier, rows, cols, vals)
        new = apply_delta(carrier, delta)
        if new is not carrier:
            new.check()
        if self._store is not None:
            self._store.journal_mutate(
                name, rows, cols, vals, carrier.type.name
            )
        self._publish_carrier(
            name, new, delta=(delta.rows, delta.cols, delta.vals)
        )
        return new

    # -- streaming ingest -----------------------------------------------------

    def ingest_edges(self, name: str, rows, cols, vals) -> dict:
        """Buffer an edge batch against graph *name* for bulk commit.

        The batch is validated (shape, bounds, dtype) on admission —
        a bad write is rejected while the caller's stack is live — and
        committed when the buffer reaches ``INGEST_BATCH`` edges, at an
        explicit :meth:`flush_ingest`, or implicitly before any
        ``mutate_graph``/``register_graph``/``checkpoint``/``close``.
        A flush is one merged carrier build and **one** journal record
        no matter how many calls filled the buffer; the ``durable``
        field of the ack says whether this call triggered it.
        """
        with self._lock:
            self._check_open()
            carrier = self._graphs.get(name)
        if carrier is None:
            raise InvalidValueError(f"no resident graph named {name!r}")
        r, c, v = coerce_edges(carrier, rows, cols, vals)
        with self._lock:
            self._check_open()
            self._ingest.setdefault(name, []).append((r, c, v))
            pending = self._ingest_pending.get(name, 0) + len(r)
            self._ingest_pending[name] = pending
        flushed = False
        if pending >= int(config.get_option("INGEST_BATCH")):
            flushed = name in self.flush_ingest(name)
        return {"name": name, "accepted": int(len(r)),
                "pending": 0 if flushed else pending, "durable": flushed}

    def flush_ingest(self, name: str | None = None) -> dict:
        """Commit buffered ingest batches (every graph, or just *name*).

        Returns ``{graph: edges_committed}`` for the graphs that had a
        non-empty buffer.  Idempotent and safe to call anytime; a
        closed service is a no-op.
        """
        with self._dur_lock:
            with self._lock:
                if self._closed:
                    return {}
                names = [name] if name is not None else list(self._ingest)
                pending: dict[str, list] = {}
                for n in names:
                    batches = self._ingest.pop(n, None)
                    self._ingest_pending.pop(n, None)
                    if batches:
                        pending[n] = batches
            out: dict[str, int] = {}
            for n, batches in pending.items():
                with self._lock:
                    carrier = self._graphs.get(n)
                if carrier is None:
                    continue
                rows = np.concatenate([b[0] for b in batches])
                cols = np.concatenate([b[1] for b in batches])
                vals = np.concatenate([b[2] for b in batches])
                self._commit_edges(n, carrier, rows, cols, vals)
                STATS.bump("ingest_batches")
                STATS.bump("ingest_edges_committed", int(len(rows)))
                out[n] = int(len(rows))
            return out

    def _publish_carrier(
        self, name: str, carrier: Any, delta: tuple | None = None
    ) -> None:
        with self._lock:
            self._graphs[name] = carrier
            self._batch_views.pop(name, None)
            gen = self._graph_gen.get(name, 0) + 1
            self._graph_gen[name] = gen
            if delta is None:
                # Full replacement: history before it cannot advance a
                # stale view to this value.
                self._graph_deltas.pop(name, None)
            else:
                hist = self._graph_deltas.setdefault(name, OrderedDict())
                hist[gen] = delta
                while len(hist) > _DELTA_HISTORY:
                    hist.popitem(last=False)

    def deltas_between(
        self, name: str, from_gen: int, to_gen: int
    ) -> list | None:
        """The write sets advancing *name* from one generation to
        another, oldest first — or ``None`` when the history cannot
        bridge the span (evicted, or a full republish in between)."""
        if to_gen <= from_gen:
            return []
        with self._lock:
            hist = self._graph_deltas.get(name)
            if hist is None:
                return None
            out = []
            for gen in range(from_gen + 1, to_gen + 1):
                delta = hist.get(gen)
                if delta is None:
                    return None
                out.append(delta)
            return out

    def _note_view_patched(self, uid: int, name: str, gen: int) -> None:
        """Re-attribute a patched view's uid to the carrier it now
        matches, so its algo-memo blocks stay checkpointable."""
        with self._lock:
            if self._graph_gen.get(name, 0) != gen:
                return  # the service moved on; attribution would be stale
            carrier = self._graphs.get(name)
            if carrier is not None:
                self._view_uids[uid] = (name, id(carrier))

    def graph_generation(self, name: str) -> int:
        """Publish generation of graph *name* (0 = never registered)."""
        with self._lock:
            return self._graph_gen.get(name, 0)

    def graphs(self) -> dict[str, dict]:
        with self._lock:
            return {
                name: {"nrows": c.nrows, "ncols": c.ncols, "nvals": c.nvals}
                for name, c in self._graphs.items()
            }

    def graph_view(self, name: str, ctx: Context) -> Matrix:
        """A zero-copy view of resident graph *name* in *ctx*.

        Side effects for the durability plane: the view's uid is mapped
        back to the graph (so the checkpointer can attribute algo-memo
        blocks), and any warm blocks a restore brought along are seeded
        into *ctx*'s result memo under this view's key — the first
        pagerank/BFS/triangles on a restored replica skips its setup
        kernels exactly as if the process had never died.
        """
        with self._lock:
            carrier = self._graphs.get(name)
            warm = [
                (key, blk) for key, blk in self._warm_blocks.items()
                if key[0] == name
            ]
        if carrier is None:
            raise InvalidValueError(f"no resident graph named {name!r}")
        mat = Matrix.from_data(carrier, ctx)
        uid, version = mat._uid, mat._version
        with self._lock:
            self._view_uids[uid] = (name, id(carrier))
        if warm and config.get_option("ENGINE_ALGO_MEMO"):
            memo = ctx.result_memo(create=True)
            if memo is not None:
                # Seed under the *current* format-policy fingerprint:
                # a block restored across a knob flip re-enters via the
                # commit gate on first hit and repacks to this policy.
                from ..algorithms._blocks import _format_fingerprint

                fp = _format_fingerprint()
                for (_, kind, params), (block, cost_ms) in warm:
                    memo.store(
                        ("algo", kind, (uid, version), params, fp),
                        block, deps=(uid,), cost_ms=cost_ms,
                    )
        return mat

    def _batch_view(self, name: str) -> Matrix:
        with self._lock:
            view = self._batch_views.get(name)
        if view is None:
            view = self.graph_view(name, self._batch_ctx)
            with self._lock:
                self._batch_views[name] = view
        return view

    # -- sessions -------------------------------------------------------------

    def open_session(
        self,
        tenant: str,
        *,
        nthreads: int | None = None,
        chunk_rows: int | None = None,
        memo_capacity: int | None = None,
    ) -> Session:
        """Bind *tenant* to a fresh child context with its own quota.

        The spec keys are the tenant's §IV resource scope: worker share
        (``nthreads``), memo quota (``memo_capacity``), and a fault
        domain equal to the tenant name so targeted chaos stays inside.
        """
        spec: dict[str, Any] = {"fault_domain": tenant}
        if nthreads is not None:
            spec["nthreads"] = nthreads
        if chunk_rows is not None:
            spec["chunk_rows"] = chunk_rows
        if memo_capacity is not None:
            spec["memo_capacity"] = memo_capacity
        with self._lock:
            self._check_open()
            if tenant in self._sessions:
                raise InvalidValueError(
                    f"tenant {tenant!r} already has an open session"
                )
        ctx = Context.new(
            self.root.mode, parent=self.root, exec_spec=spec,
            name=f"sess-{tenant}",
        )
        session = Session(self, tenant, ctx)
        with self._lock:
            self._sessions[tenant] = session
        return session

    def _forget_session(self, session: Session) -> None:
        with self._lock:
            if self._sessions.get(session.tenant) is session:
                del self._sessions[session.tenant]

    def sessions(self) -> dict[str, Session]:
        with self._lock:
            return dict(self._sessions)

    # -- execution ------------------------------------------------------------

    def execute(self, session: Session, query: Query) -> QueryResult:
        """Run one query alone in the tenant's context (no batching)."""
        result = session.run(query)
        STATS.bump("serve_completed")
        return result

    def execute_window(self, entries: list, tokens: list | None = None) -> list:
        """Run a window of ``(session, query)`` pairs, coalesced.

        Returns one slot per entry, in submission order: a
        :class:`QueryResult` on success or the ``Exception`` that query
        raised (per-query failure isolation — one tenant's error never
        poisons a sibling's slot).  ``tokens`` (parallel to *entries*)
        carries each query's cancellation token; solo executions run
        inside their token's scope, while *shared* submissions (msbfs,
        dedup) deliberately run unscoped — one rider's deadline must
        never kill an answer its siblings are still entitled to.
        """
        groups = coalesce(entries)
        results: list = [None] * len(entries)
        for group in groups:
            self._run_group(group, results, tokens)
        return results

    def _run_group(
        self, group: Group, results: list, tokens: list | None = None
    ) -> None:
        if group.mode == "msbfs" and len(group.entries) > 1:
            if self._run_msbfs(group, results):
                return
        elif group.mode == "dedup" and len(group.entries) > 1:
            if self._run_dedup(group, results):
                return
        # Singles — and the serial fallback when a shared submission
        # failed: every rider re-runs alone in its own context, so a
        # fault in the shared path degrades to per-query §V semantics.
        for idx, session, query in group.entries:
            if results[idx] is not None:
                continue
            token = tokens[idx] if tokens is not None else None
            try:
                results[idx] = session.run(query, token=token)
            except Exception as exc:
                results[idx] = exc

    def _run_msbfs(self, group: Group, results: list) -> bool:
        """One multi-source traversal answering every rider; False to
        fall back to serial singles."""
        graph = group.entries[0][2].graph
        sources = [int(q.source) for _, _, q in group.entries]
        t0 = time.perf_counter()
        try:
            from ..algorithms import msbfs_levels

            view = self._batch_view(graph)
            levels = msbfs_levels(view, sources)
            rows, cols, vals = levels.extract_tuples()
        except Exception:
            return False
        per_row: list[dict[int, int]] = [{} for _ in group.entries]
        for r, c, v in zip(rows, cols, vals):
            per_row[int(r)][int(c)] = int(v)
        latency = (time.perf_counter() - t0) * 1e3
        for (idx, session, query), value in zip(group.entries, per_row):
            result = QueryResult(
                query, value, session.tenant,
                latency_ms=latency, batched=True,
            )
            session.record(result)
            results[idx] = result
        return True

    def _run_dedup(self, group: Group, results: list) -> bool:
        """Execute one representative; every rider shares the answer."""
        idx0, rep_session, rep_query = group.entries[0]
        t0 = time.perf_counter()
        try:
            value = rep_session._dispatch(rep_query)
        except Exception:
            return False
        latency = (time.perf_counter() - t0) * 1e3
        for idx, session, query in group.entries:
            result = QueryResult(
                query, value, session.tenant,
                latency_ms=latency, batched=True,
            )
            session.record(result)
            results[idx] = result
        return True

    # -- durability: checkpoint / restore -------------------------------------

    def checkpoint(self) -> dict | None:
        """Compact journal-into-snapshot; returns the manifest.

        Persists every resident carrier (digest-keyed §VII blobs), the
        warm algo-memo blocks attributable to resident graphs, and the
        cost model's calibrated rates, then rotates to a fresh journal
        generation.  No-op (``None``) without a checkpoint store.
        """
        self._save_warm_calibration()
        if self._store is None:
            return None
        from ..engine.passes import cost

        with self._dur_lock:
            # Buffered ingest folds into the snapshot, not the next
            # journal generation.
            self.flush_ingest()
            with self._lock:
                self._check_open()
                graphs = dict(self._graphs)
            return self._store.write_checkpoint(
                graphs,
                blocks=self._collect_warm_blocks(graphs),
                calibration=cost.export_calibration(),
                service=self.name,
            )

    def _collect_warm_blocks(self, graphs: dict[str, Any]) -> dict:
        """Algo-memo entries attributable to a *current* resident graph,
        keyed portably as ``(graph name, block kind, params)``."""
        contexts = [self._batch_ctx]
        contexts.extend(s.ctx for s in self.sessions().values())
        with self._lock:
            view_uids = dict(self._view_uids)
        out: dict[tuple, tuple] = dict(self._warm_blocks)
        for ctx in contexts:
            memo = ctx.result_memo(create=False)
            if memo is None:
                continue
            for key, carrier, cost_ms in memo.entries():
                if not (isinstance(key, tuple) and len(key) == 5
                        and key[0] == "algo"):
                    continue
                _, kind, vkey, params, _fp = key
                if isinstance(kind, str) and kind.startswith("warm:"):
                    # Warm fixpoint payloads are (value, meta) tuples,
                    # not §VII carrier streams — rebuilt, not restored.
                    continue
                if not (isinstance(vkey, tuple) and len(vkey) == 2):
                    continue
                mapped = view_uids.get(vkey[0])
                if mapped is None:
                    continue
                gname, carrier_id = mapped
                if gname not in graphs or id(graphs[gname]) != carrier_id:
                    continue  # block belongs to a superseded carrier
                out[(gname, kind, params)] = (carrier, cost_ms)
        return out

    @classmethod
    def restore(
        cls,
        checkpoint_dir: str,
        mode: Mode = Mode.NONBLOCKING,
        name: str = "svc",
    ) -> "GraphService":
        """Rebuild a service from its checkpoint directory.

        Journal-over-snapshot replay through the *same*
        ``apply_edges`` path the live service uses, so the restored
        carriers are bit-identical to a replica that never crashed —
        zero lost acknowledged writes.  Warm blocks and calibration
        rates rehydrate lazily (blocks seed each context's memo as
        views are created).
        """
        svc = cls(mode, name=name, checkpoint_dir=checkpoint_dir)
        assert svc._store is not None
        state = svc._store.load()
        with svc._dur_lock:
            for gname, carrier in state.graphs.items():
                svc._publish_carrier(gname, carrier)
            with svc._lock:
                svc._warm_blocks = dict(state.blocks)
        if state.calibration:
            from ..engine.passes import cost

            cost.seed_calibration(state.calibration)
        STATS.bump("restores")
        if state.graphs:
            STATS.bump("restored_graphs", len(state.graphs))
        if state.blocks:
            STATS.bump("restored_blocks", len(state.blocks))
        return svc

    # -- health ---------------------------------------------------------------

    def _record_outcome(self, session: Session, ok: bool) -> None:
        """Feed one execution outcome to the tenant's circuit breaker;
        a successful probe restores the context (clears demotion)."""
        event = self.health.record(session.tenant, ok)
        if event == "recovered":
            session.ctx.restore()

    # -- introspection / teardown ---------------------------------------------

    def tenant_stats(self) -> dict[str, dict]:
        """Per-tenant rollups (the serving ``engine_stats()`` story)."""
        out = {}
        for tenant, session in self.sessions().items():
            snap = session.stats()
            snap["breaker"] = self.health.breaker(tenant).snapshot()
            snap["health_score"] = HealthMonitor.score(snap)
            out[tenant] = snap
        out["<batch>"] = self._batch_ctx.local_stats().snapshot()
        return out

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidValueError(f"service {self.name!r} is closed")

    def _save_warm_calibration(self) -> None:
        """Persist live calibration into the warm-start store sidecar
        (best effort — the store must never fail a checkpoint/close)."""
        if self._warm_store is None:
            return
        try:
            from ..store import tier as store_tier

            store_tier.save_calibration()
        except Exception:
            pass

    def close(self) -> None:
        """Free every session and the service's context tree."""
        self._save_warm_calibration()
        try:
            # Accepted ingest becomes durable before teardown; a flush
            # failure must not leave the service half-closed.
            self.flush_ingest()
        except Exception:
            pass
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
            self._graphs.clear()
            self._batch_views.clear()
            self._view_uids.clear()
            self._warm_blocks.clear()
            self._ingest.clear()
            self._ingest_pending.clear()
            self._graph_deltas.clear()
        for session in sessions:
            session.ctx.free()
        self.root.free()
        if self._store is not None:
            self._store.close()

"""Query coalescing: many compatible requests, one planner pass.

The batcher inspects a window of admitted queries and groups them:

* **msbfs** — ≥2 BFS queries over the same resident graph collapse
  into one multi-source traversal (:func:`repro.algorithms.
  msbfs_levels`): a k×n frontier matrix expanded by one masked ``mxm``
  per level, so k clients' traversals cost one planner pass and one
  kernel sequence instead of k.
* **dedup** — ≥2 *identical* analytic queries (same kind, graph, and
  params) execute once; every rider shares the plain-data answer.
* **single** — everything else runs alone in its tenant's context.

Degraded tenants are excluded from shared groups: their queries run
serially in their own (demoted) context so a faulted tenant can never
slow — or fault — a shared submission its healthy siblings ride on.
``SERVE_BATCH=0`` (env ``REPRO_SERVE_BATCH``) disables coalescing for
the ablation matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.stats import STATS
from ..internals import config
from .query import Query

__all__ = ["Group", "coalesce"]


@dataclass
class Group:
    """One dispatch unit: entries are ``(index, session, query)`` where
    *index* is the position in the original submission window."""

    mode: str  # "msbfs" | "dedup" | "single"
    entries: list = field(default_factory=list)

    @property
    def queries(self) -> list[Query]:
        return [q for _, _, q in self.entries]


def coalesce(entries: list, enabled: bool | None = None) -> list[Group]:
    """Partition a submission window into dispatch groups.

    *entries* is a list of ``(session, query)``; the returned groups
    carry ``(index, session, query)`` triples so the executor can map
    results back to submission order.  Counters: each shared group
    bumps ``serve_batches`` once and ``serve_batched_queries`` by its
    rider count.
    """
    if enabled is None:
        enabled = bool(config.get_option("SERVE_BATCH"))
    indexed = [(i, s, q) for i, (s, q) in enumerate(entries)]
    if not enabled:
        return [Group("single", [e]) for e in indexed]

    groups: list[Group] = []
    bfs_by_graph: dict[str, Group] = {}
    dedup_by_key: dict[tuple, Group] = {}
    for entry in indexed:
        _, session, query = entry
        if session.is_degraded:
            # Demoted tenants run alone: no shared submission may
            # depend on a context that faults or crawls.
            groups.append(Group("single", [entry]))
            continue
        if query.kind == "bfs":
            g = bfs_by_graph.get(query.graph)
            if g is None:
                g = Group("msbfs")
                bfs_by_graph[query.graph] = g
                groups.append(g)
            g.entries.append(entry)
        else:
            g = dedup_by_key.get(query.dedup_key)
            if g is None:
                g = Group("dedup")
                dedup_by_key[query.dedup_key] = g
                groups.append(g)
            g.entries.append(entry)

    for g in groups:
        if len(g.entries) < 2:
            g.mode = "single"
        else:
            STATS.bump("serve_batches")
            STATS.bump("serve_batched_queries", len(g.entries))
    return groups

"""The asyncio front door: admission → queue → batch → dispatch.

``GraphServer`` turns the synchronous :class:`~repro.serve.service.
GraphService` into a concurrent server: ``submit()`` either sheds
immediately (:class:`~repro.serve.admission.ServiceOverloadError` —
the bounded-queue guarantee, or
:class:`~repro.serve.health.TenantBreakerOpenError` when the tenant's
circuit breaker is open) or parks the query on an asyncio queue.
A single dispatcher task drains the queue in *windows*, hands each
window to the batcher, and runs the coalesced groups on a worker
thread, resolving per-query futures as results land.

The natural batching dynamic: while one window executes, newly
submitted queries pile up in the queue, so the next window is as wide
as the load is heavy — batching effort scales with pressure, which is
exactly when coalescing pays.

Deadlines: each submission gets a :class:`~repro.engine.cancel.
CancelToken` (query deadline, else the server default, else the
``QUERY_DEADLINE_MS`` knob).  The waiter enforces it on the asyncio
side (``wait_for``), the engine enforces it cooperatively at every
kernel and planner-pass boundary, and both surface the same transient
``GrB_TIMEOUT``.  An expired or abandoned query frees its admission
slot immediately — a stuck kernel cannot starve admission.

Shutdown: ``stop()`` drains within a bounded grace period; queries
still queued when it elapses fail with the typed, transient
:class:`ServiceShutdownError`, as do submissions arriving during or
after shutdown.  No dispatcher task or future is leaked.
"""

from __future__ import annotations

import asyncio
import time

from ..engine import cancel
from ..engine.stats import STATS
from ..internals import config
from .admission import AdmissionController, ServiceOverloadError
from .query import Query, QueryResult
from .service import GraphService
from .session import Session

__all__ = ["GraphServer", "ServiceShutdownError"]


class ServiceShutdownError(ServiceOverloadError):
    """Typed rejection for submissions to a stopping/stopped server.

    A flavour of load shedding (§V transient): the replica is going
    away, a re-invocation against a restarted or sibling replica may
    succeed.  Replaces the bare ``RuntimeError`` clients used to get.
    """

    def __init__(self, message: str, tenant: str = ""):
        super().__init__(message, tenant=tenant, reason="shutdown")


class _Pending:
    """One queued submission (future + token + slot bookkeeping)."""

    __slots__ = ("session", "query", "fut", "t0", "token", "released")

    def __init__(self, session: Session, query: Query, fut, token):
        self.session = session
        self.query = query
        self.fut = fut
        self.t0 = time.perf_counter()
        self.token = token
        self.released = False


def _consume_exception(fut) -> None:
    """Retrieve an abandoned future's exception so asyncio never logs
    'exception was never retrieved' for a query whose client timed out."""
    if not fut.cancelled():
        fut.exception()


class GraphServer:
    """Asyncio serving loop over a :class:`GraphService`."""

    def __init__(
        self,
        service: GraphService,
        *,
        max_pending: int = 64,
        per_tenant: int = 8,
        batch_window: int = 16,
        deadline_ms: float | None = None,
    ):
        self.service = service
        self.admission = AdmissionController(max_pending, per_tenant)
        self.batch_window = max(1, int(batch_window))
        #: Server-wide default deadline; ``None`` falls through to the
        #: ``QUERY_DEADLINE_MS`` knob (0 = unbounded).
        self.deadline_ms = deadline_ms
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping = False

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        if self._task is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stopping = False
        self._task = self._loop.create_task(self._dispatch())

    async def stop(self, grace: float | None = 5.0) -> None:
        """Drain and stop within *grace* seconds (``None`` = wait forever).

        Sets the server rejecting first (new submissions get
        :class:`ServiceShutdownError`), lets the dispatcher finish the
        queue, and on grace expiry cancels it and fails whatever was
        still queued — every future resolves, every admission slot is
        released, no task leaks.
        """
        self._stopping = True
        if self._task is None:
            self._queue = None
            return
        await self._queue.put(None)
        try:
            if grace is None:
                await self._task
            else:
                await asyncio.wait_for(asyncio.shield(self._task), grace)
        except asyncio.TimeoutError:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
        # Fail anything the dispatcher never got to.
        while True:
            try:
                entry = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if entry is None:
                continue
            self._release_once(entry)
            if not entry.fut.done():
                STATS.bump("serve_shutdown_rejected")
                entry.fut.set_exception(ServiceShutdownError(
                    f"server stopped before query ran "
                    f"(tenant {entry.session.tenant!r})",
                    tenant=entry.session.tenant,
                ))
                entry.fut.add_done_callback(_consume_exception)
        self._task = None
        self._queue = None

    async def __aenter__(self) -> "GraphServer":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> bool:
        await self.stop()
        return False

    # -- client surface -------------------------------------------------------

    def _effective_deadline_ms(self, query: Query) -> float | None:
        if query.deadline_ms is not None:
            return query.deadline_ms
        if self.deadline_ms is not None:
            return self.deadline_ms
        return float(config.get_option("QUERY_DEADLINE_MS"))

    def _release_once(self, entry: _Pending) -> None:
        # Single event loop thread: no lock needed for the flag.
        if not entry.released:
            entry.released = True
            self.admission.release(entry.session.tenant)

    async def submit(self, session: Session, query: Query) -> QueryResult:
        """Admit, enqueue, and await one query.

        Sheds *immediately* — typed, transient, without queueing — when
        the server is stopping (:class:`ServiceShutdownError`), the
        tenant's breaker is open (:class:`~repro.serve.health.
        TenantBreakerOpenError`), or the bounded queue / tenant cap is
        exhausted (:class:`~repro.serve.admission.
        ServiceOverloadError`).  A deadline that expires while the
        query is queued or running raises the transient
        ``GrB_TIMEOUT`` and frees the admission slot at once.
        """
        if self._queue is None or self._stopping:
            STATS.bump("serve_shutdown_rejected")
            raise ServiceShutdownError(
                f"server is {'stopping' if self._stopping else 'not started'}"
                f" (tenant {session.tenant!r})",
                tenant=session.tenant,
            )
        self.service.health.admit(session.tenant)  # breaker gate
        self.admission.try_admit(session.tenant)   # raises when shedding
        STATS.bump("serve_submitted")
        session.ctx.local_stats().bump("queries_submitted")
        token = cancel.CancelToken.after_ms(
            self._effective_deadline_ms(query),
            label=f"{session.tenant}:{query.kind}",
        )
        entry = _Pending(session, query, self._loop.create_future(), token)
        await self._queue.put(entry)
        try:
            if token.deadline is None:
                return await entry.fut
            return await asyncio.wait_for(
                asyncio.shield(entry.fut), token.remaining_s()
            )
        except asyncio.TimeoutError:
            # Deadline hit while queued or mid-execution: flag the token
            # (the engine stops at its next kernel/pass boundary and
            # rolls back to last-committed state), free the slot now,
            # and surface the same transient timeout the engine would.
            token.cancel("deadline expired")
            self._release_once(entry)
            STATS.bump("serve_timeouts")
            session.ctx.local_stats().bump("queries_timeout")
            entry.fut.add_done_callback(_consume_exception)
            raise token.error("await") from None
        except asyncio.CancelledError:
            # Client abandoned the await: same cooperative stop, then
            # propagate the cancellation per asyncio convention.
            token.cancel("client abandoned query")
            self._release_once(entry)
            entry.fut.add_done_callback(_consume_exception)
            raise

    # -- dispatcher -----------------------------------------------------------

    async def _dispatch(self) -> None:
        while True:
            first = await self._queue.get()
            drained = [first]
            while len(drained) < self.batch_window:
                try:
                    drained.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            stopping = any(item is None for item in drained)
            window: list[_Pending] = []
            for entry in drained:
                if entry is None:
                    continue
                if entry.token.should_stop():
                    # Expired (or abandoned) while queued: don't waste a
                    # worker on it — its slot is already reusable.
                    self._release_once(entry)
                    if not entry.fut.done():
                        entry.fut.set_exception(entry.token.error("queued"))
                        entry.fut.add_done_callback(_consume_exception)
                    continue
                window.append(entry)
            if window:
                entries = [(e.session, e.query) for e in window]
                tokens = [e.token for e in window]
                try:
                    results = await self._loop.run_in_executor(
                        None, self.service.execute_window, entries, tokens
                    )
                except Exception as exc:  # defensive: executor itself died
                    results = [exc] * len(window)
                now = time.perf_counter()
                for entry, res in zip(window, results):
                    self._release_once(entry)
                    if entry.fut.done():
                        continue
                    if isinstance(res, Exception):
                        entry.fut.set_exception(res)
                    else:
                        res.total_ms = (now - entry.t0) * 1e3
                        STATS.bump("serve_completed")
                        entry.fut.set_result(res)
            if stopping:
                return

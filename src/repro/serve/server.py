"""The asyncio front door: admission → queue → batch → dispatch.

``GraphServer`` turns the synchronous :class:`~repro.serve.service.
GraphService` into a concurrent server: ``submit()`` either sheds
immediately (:class:`~repro.serve.admission.ServiceOverloadError` —
the bounded-queue guarantee) or parks the query on an asyncio queue.
A single dispatcher task drains the queue in *windows*, hands each
window to the batcher, and runs the coalesced groups on a worker
thread, resolving per-query futures as results land.

The natural batching dynamic: while one window executes, newly
submitted queries pile up in the queue, so the next window is as wide
as the load is heavy — batching effort scales with pressure, which is
exactly when coalescing pays.
"""

from __future__ import annotations

import asyncio
import time

from ..engine.stats import STATS
from .admission import AdmissionController
from .query import Query, QueryResult
from .service import GraphService
from .session import Session

__all__ = ["GraphServer"]


class GraphServer:
    """Asyncio serving loop over a :class:`GraphService`."""

    def __init__(
        self,
        service: GraphService,
        *,
        max_pending: int = 64,
        per_tenant: int = 8,
        batch_window: int = 16,
    ):
        self.service = service
        self.admission = AdmissionController(max_pending, per_tenant)
        self.batch_window = max(1, int(batch_window))
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        if self._task is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._task = self._loop.create_task(self._dispatch())

    async def stop(self) -> None:
        if self._task is None:
            return
        await self._queue.put(None)
        await self._task
        self._task = None
        self._queue = None

    async def __aenter__(self) -> "GraphServer":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> bool:
        await self.stop()
        return False

    # -- client surface -------------------------------------------------------

    async def submit(self, session: Session, query: Query) -> QueryResult:
        """Admit, enqueue, and await one query.

        Raises :class:`ServiceOverloadError` *immediately* when the
        bounded queue or the tenant's concurrency cap is exhausted —
        shed load never waits.
        """
        if self._queue is None:
            raise RuntimeError("GraphServer.submit before start()")
        self.admission.try_admit(session.tenant)   # raises when shedding
        STATS.bump("serve_submitted")
        session.ctx.local_stats().bump("queries_submitted")
        fut = self._loop.create_future()
        await self._queue.put((session, query, fut, time.perf_counter()))
        return await fut

    # -- dispatcher -----------------------------------------------------------

    async def _dispatch(self) -> None:
        while True:
            first = await self._queue.get()
            drained = [first]
            while len(drained) < self.batch_window:
                try:
                    drained.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            window = [item for item in drained if item is not None]
            stopping = len(window) != len(drained)
            if window:
                entries = [(s, q) for s, q, _, _ in window]
                try:
                    results = await self._loop.run_in_executor(
                        None, self.service.execute_window, entries
                    )
                except Exception as exc:  # defensive: executor itself died
                    results = [exc] * len(window)
                now = time.perf_counter()
                for (session, query, fut, t0), res in zip(window, results):
                    self.admission.release(session.tenant)
                    if fut.done():
                        continue
                    if isinstance(res, Exception):
                        fut.set_exception(res)
                    else:
                        res.total_ms = (now - t0) * 1e3
                        STATS.bump("serve_completed")
                        fut.set_result(res)
            if stopping:
                return

"""One client's binding to the service: a tenant-scoped child context.

A session owns a child :class:`~repro.core.context.Context` whose
resource spec carries the tenant's worker share (``nthreads``), memo
quota (``memo_capacity``), and fault domain (``fault_domain`` =
tenant name).  Resident graphs are materialized into the session as
zero-copy *views* (``Matrix.from_data`` over the shared immutable
carrier), so every derived object, memo entry, and degradation flag is
tenant-local while the graph bytes are shared — the §IV same-context
rule holds without duplicating data.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..algorithms import bfs_levels, pagerank, triangle_count
from ..core.context import Context
from ..core.errors import InvalidValueError, TimeoutExpiredError
from ..engine import cancel
from ..engine.stats import STATS
from ..internals import config
from .query import Query, QueryResult

__all__ = ["Session", "percentile"]


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    if q <= 0:
        return sorted_values[0]
    rank = max(1, min(len(sorted_values),
                      int(round(q / 100.0 * len(sorted_values) + 0.5))))
    return sorted_values[rank - 1]


class Session:
    """A tenant's serving handle (created via ``GraphService.open_session``)."""

    def __init__(self, service, tenant: str, ctx: Context):
        self.service = service
        self.tenant = tenant
        self.ctx = ctx
        self._lock = threading.Lock()
        self._views: dict[str, Any] = {}
        self._latencies_ms: list[float] = []
        self._closed = False
        # Eager rollup: the scheduler attributes kernel time and reuse
        # events only to contexts that already carry a ContextStats.
        ctx.local_stats()

    # -- graph access ---------------------------------------------------------

    def view(self, graph: str):
        """This session's zero-copy view of a resident graph.

        Views are cached per generation: a write bumps the resident
        graph's generation, and the next ``view`` call advances the
        cache.  Under ``ENGINE_DELTA``, a view that is only a few
        generations behind is *patched forward in place* from the
        service's recorded write sets (``Matrix.update_batch``) instead
        of re-wrapped — same uid, so delta-patched algo-memo blocks
        (warm pagerank ranks, component labels, the pattern block)
        survive the write.  A history gap, a full republish, or a
        patch failure falls back to a fresh view (the old path).
        """
        gen = self.service.graph_generation(graph)
        with self._lock:
            if self._closed:
                raise InvalidValueError(
                    f"session {self.tenant!r} is closed"
                )
            cached = self._views.get(graph)
            if cached is not None and cached[1] == gen:
                return cached[0]
            if (cached is not None and cached[1] < gen
                    and config.get_option("ENGINE_DELTA")):
                deltas = self.service.deltas_between(graph, cached[1], gen)
                if deltas is not None:
                    mat = cached[0]
                    try:
                        for rows, cols, vals in deltas:
                            mat.update_batch(rows, cols, vals)
                    except Exception:
                        pass  # fall through to a fresh view
                    else:
                        self._views[graph] = (mat, gen)
                        STATS.bump("serve_views_patched")
                        self.service._note_view_patched(
                            mat._uid, graph, gen
                        )
                        return mat
        mat = self.service.graph_view(graph, self.ctx)
        with self._lock:
            self._views[graph] = (mat, gen)
        return mat

    # -- execution (synchronous; the server wraps this in its loop) -----------

    def run(self, query: Query, token: cancel.CancelToken | None = None) -> QueryResult:
        """Execute one query in this session's own context, timed.

        When a cancellation *token* is supplied (or the query/config
        carries a deadline), the dispatch runs inside its scope: the
        engine checks it at every kernel and planner-pass boundary and
        raises a transient ``GrB_TIMEOUT`` the moment it trips, leaving
        carriers at their last-committed state.  Outcomes — success,
        failure, timeout — feed the tenant's circuit breaker.
        """
        if token is None:
            ms = query.deadline_ms
            if ms is None:
                ms = float(config.get_option("QUERY_DEADLINE_MS"))
            token = cancel.CancelToken.after_ms(
                ms, label=f"{self.tenant}:{query.kind}"
            )
        t0 = time.perf_counter()
        try:
            with cancel.cancel_scope(token):
                value = self._dispatch(query)
        except TimeoutExpiredError:
            STATS.bump("serve_timeouts")
            self.ctx.local_stats().bump("queries_timeout")
            self.service._record_outcome(self, ok=False)
            raise
        except Exception:
            self.ctx.local_stats().bump("queries_failed")
            self.service._record_outcome(self, ok=False)
            raise
        latency = (time.perf_counter() - t0) * 1e3
        result = QueryResult(query, value, self.tenant, latency_ms=latency)
        self.record(result)
        return result

    def _dispatch(self, query: Query) -> Any:
        # Answers are plain Python data (no numpy scalars, no GrB
        # objects): results must cross context — and process —
        # boundaries freely.
        view = self.view(query.graph)
        params = dict(query.params)
        if query.kind == "bfs":
            levels = bfs_levels(view, int(query.source))
            return {int(k): int(v) for k, v in levels.to_dict().items()}
        if query.kind == "pagerank":
            ranks, iters = pagerank(view, **params)
            return {
                "ranks": {int(k): float(v)
                          for k, v in ranks.to_dict().items()},
                "iterations": int(iters),
            }
        if query.kind == "triangles":
            return int(triangle_count(view))
        raise InvalidValueError(f"unknown query kind {query.kind!r}")

    def record(self, result: QueryResult) -> None:
        """Fold one completed query into the tenant's latency record.

        Every completion path (solo and batched) lands here, so this is
        also where a success feeds the tenant's circuit breaker.
        """
        stats = self.ctx.local_stats()
        stats.bump("queries_completed")
        if result.batched:
            stats.bump("queries_batched")
        with self._lock:
            self._latencies_ms.append(result.latency_ms)
        self.service._record_outcome(self, ok=True)

    # -- introspection --------------------------------------------------------

    @property
    def is_degraded(self) -> bool:
        return self.ctx.is_degraded

    def stats(self) -> dict:
        """Tenant rollup: engine attribution + serving latency percentiles."""
        snap = self.ctx.local_stats().snapshot()
        with self._lock:
            lat = sorted(self._latencies_ms)
        snap["queries_recorded"] = len(lat)
        snap["latency_p50_ms"] = percentile(lat, 50.0)
        snap["latency_p99_ms"] = percentile(lat, 99.0)
        snap["degraded"] = self.ctx.is_degraded
        snap["fault_domain"] = self.ctx.fault_domain
        memo = self.ctx.result_memo(create=False)
        snap["memo_entries"] = 0 if memo is None else len(memo)
        return snap

    def close(self) -> None:
        """Release the tenant context (views, memo, pool die with it)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._views.clear()
        self.ctx.free()
        self.service._forget_session(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"Session({self.tenant!r}, {state})"

"""Per-tenant health scoring and circuit breakers.

The resilience layer's only per-tenant response used to be one-way:
enough worker faults and a context serially demotes, forever.  This
module closes the loop with the classic breaker lifecycle:

* **closed** — queries flow; consecutive execution failures (including
  deadline timeouts) are counted from the per-context rollups that
  :mod:`repro.engine.stats` already keeps.
* **open** — ``BREAKER_THRESHOLD`` consecutive failures trip the
  breaker; the tenant's queries are shed *immediately* at the front
  door with a typed, transient :class:`TenantBreakerOpenError` (the
  §V ``GrB_INSUFFICIENT_SPACE`` contract: retry later may succeed) —
  no kernel time is spent on a tenant whose work keeps dying.
* **half-open** — after ``BREAKER_COOLDOWN`` seconds exactly one probe
  query is admitted.  Success closes the breaker *and* restores the
  tenant's context (:meth:`Context.restore` — undoing any serial
  demotion the failure streak caused); failure re-opens it for another
  cooldown.

Only execution outcomes move a breaker: admission sheds and shutdown
rejections say nothing about the tenant's workload health.  A breaker
never touches another tenant — hierarchical contexts already isolate
resources; this isolates *failure response*.
"""

from __future__ import annotations

import threading
import time

from ..core.errors import InsufficientSpaceError
from ..engine.stats import STATS
from ..internals import config

__all__ = ["TenantBreakerOpenError", "CircuitBreaker", "HealthMonitor"]


class TenantBreakerOpenError(InsufficientSpaceError):
    """Typed shed for a tenant whose circuit breaker is open.

    Transient by construction: the breaker half-opens after its
    cooldown, so "re-invocation may succeed" (§V) is literally the
    recovery protocol.  ``retry_after_s`` tells a well-behaved client
    when the next probe slot opens.
    """

    def __init__(self, message: str, tenant: str = "", retry_after_s: float = 0.0):
        super().__init__(message)
        self.transient = True
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class CircuitBreaker:
    """One tenant's failure-streak state machine (thread-safe)."""

    __slots__ = (
        "_lock", "state", "consecutive_failures", "_opened_at",
        "_probe_inflight", "_probe_at", "trips", "recoveries",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self._probe_at = 0.0
        self.trips = 0
        self.recoveries = 0

    @staticmethod
    def _threshold() -> int:
        return int(config.get_option("BREAKER_THRESHOLD"))

    @staticmethod
    def _cooldown() -> float:
        return float(config.get_option("BREAKER_COOLDOWN"))

    def admit(self, now: float | None = None) -> str:
        """Gate one query: ``"ok"``, ``"probe"``, or ``"open"``.

        ``"open"`` means shed (the caller raises the typed error);
        ``"probe"`` admits the half-open state's single trial query.
        """
        if self._threshold() <= 0:
            return "ok"
        now = time.monotonic() if now is None else now
        with self._lock:
            if self.state == "closed":
                return "ok"
            if self.state == "open":
                if now - self._opened_at < self._cooldown():
                    return "open"
                self.state = "half-open"
                self._probe_inflight = False
            # Half-open: exactly one probe at a time.  A probe whose
            # outcome never came back (shed downstream, shutdown) frees
            # its slot after a cooldown so the breaker cannot wedge.
            if self._probe_inflight and now - self._probe_at < self._cooldown():
                return "open"
            self._probe_inflight = True
            self._probe_at = now
            return "probe"

    def record(self, ok: bool, now: float | None = None) -> str | None:
        """Record one execution outcome; returns the lifecycle event it
        caused (``"tripped"`` | ``"recovered"``) or ``None``."""
        threshold = self._threshold()
        now = time.monotonic() if now is None else now
        with self._lock:
            if self.state == "half-open":
                self._probe_inflight = False
                if ok:
                    self.state = "closed"
                    self.consecutive_failures = 0
                    self.recoveries += 1
                    return "recovered"
                self.state = "open"
                self._opened_at = now
                return None
            if ok:
                self.consecutive_failures = 0
                return None
            self.consecutive_failures += 1
            if (
                self.state == "closed"
                and threshold > 0
                and self.consecutive_failures >= threshold
            ):
                self.state = "open"
                self._opened_at = now
                self.trips += 1
                return "tripped"
            return None

    def retry_after_s(self, now: float | None = None) -> float:
        now = time.monotonic() if now is None else now
        with self._lock:
            if self.state != "open":
                return 0.0
            return max(0.0, self._cooldown() - (now - self._opened_at))

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "trips": self.trips,
                "recoveries": self.recoveries,
            }


class HealthMonitor:
    """Tenant name → breaker, plus the health scores behind them."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, tenant: str) -> CircuitBreaker:
        with self._lock:
            br = self._breakers.get(tenant)
            if br is None:
                br = self._breakers[tenant] = CircuitBreaker()
            return br

    def admit(self, tenant: str) -> str:
        """Front-door gate: raises :class:`TenantBreakerOpenError` when
        the tenant's breaker sheds; returns ``"ok"`` or ``"probe"``."""
        verdict = self.breaker(tenant).admit()
        if verdict == "open":
            STATS.bump("breaker_open_rejected")
            retry = self.breaker(tenant).retry_after_s()
            raise TenantBreakerOpenError(
                f"tenant {tenant!r} circuit breaker open "
                f"(retry in {retry:.3f}s)",
                tenant=tenant, retry_after_s=retry,
            )
        if verdict == "probe":
            STATS.bump("breaker_probes")
        return verdict

    def record(self, tenant: str, ok: bool) -> str | None:
        """Record an execution outcome; bumps the lifecycle counters and
        returns the event so the service can act (context restore)."""
        event = self.breaker(tenant).record(ok)
        if event == "tripped":
            STATS.bump("breaker_trips")
        elif event == "recovered":
            STATS.bump("breaker_recoveries")
        return event

    @staticmethod
    def score(ctx_stats: dict) -> float:
        """Health in [0, 1] from a per-context stats rollup: the
        failure+timeout share of completed queries, inverted."""
        done = float(ctx_stats.get("queries_completed", 0) or 0)
        bad = float(ctx_stats.get("queries_failed", 0) or 0)
        bad += float(ctx_stats.get("queries_timeout", 0) or 0)
        total = done + bad
        if total <= 0:
            return 1.0
        return max(0.0, 1.0 - bad / total)

    def snapshot(self) -> dict:
        with self._lock:
            return {t: b.snapshot() for t, b in self._breakers.items()}

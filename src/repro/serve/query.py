"""Serving-layer query descriptions (plain data, no GrB objects).

A query names a resident graph and an algorithm over it; results come
back as plain Python values (dicts/ints/floats).  Keeping GrB objects
out of the wire format is what lets the batcher run one query's work
in whatever context wins (the tenant's own, or the service's shared
batch context) without ever violating the §IV same-context rule
(`ops/common.py::check_context`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.errors import InvalidValueError

__all__ = ["Query", "QueryResult", "KINDS"]

#: Algorithms the serving layer dispatches.
KINDS = ("bfs", "pagerank", "triangles")


@dataclass(frozen=True)
class Query:
    """One client request: *algorithm* over *resident graph*.

    ``source`` is required for ``bfs`` and meaningless otherwise;
    ``params`` is a canonical (sorted) tuple of extra keyword pairs so
    two textually different but semantically identical requests compare
    (and batch) equal.
    """

    kind: str
    graph: str
    source: int | None = None
    params: tuple = field(default=())
    #: Client deadline in milliseconds (``None`` = server default, which
    #: itself defaults to the ``QUERY_DEADLINE_MS`` knob; 0 disables).
    #: Not part of :attr:`dedup_key` — two queries that want the same
    #: answer coalesce regardless of how long each is willing to wait.
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise InvalidValueError(
                f"unknown query kind {self.kind!r}; known: {KINDS}"
            )
        if self.kind == "bfs" and self.source is None:
            raise InvalidValueError("bfs query needs a source vertex")
        if self.kind != "bfs" and self.source is not None:
            raise InvalidValueError(
                f"{self.kind} query takes no source vertex"
            )
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise InvalidValueError(
                f"query deadline must be >= 0, got {self.deadline_ms!r}"
            )
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    @classmethod
    def make(cls, kind: str, graph: str, source: int | None = None,
             deadline_ms: float | None = None, **params: Any) -> "Query":
        return cls(kind, graph, source, tuple(params.items()), deadline_ms)

    @property
    def dedup_key(self) -> tuple:
        """Identity for exact-duplicate coalescing (same answer)."""
        return (self.kind, self.graph, self.source, self.params)


@dataclass
class QueryResult:
    """One completed query: the plain-data answer plus serving metadata."""

    query: Query
    value: Any
    tenant: str
    latency_ms: float = 0.0    # execution wall (batch wall when batched)
    total_ms: float = 0.0      # client-observed wall incl. queue wait
    batched: bool = False

"""Mask and accumulator machinery shared by every GraphBLAS operation.

Every operation ends with the same write-back rule (spec §"accumulator
and mask", rendered in the paper's notation as ``C⟨M, r⟩ = C ⊙ T``):

1. When an accumulator ``⊙`` is given, combine the old content of C with
   the computed result T over the structural union (pairwise ``⊙`` where
   both are stored, pass-through where only one is).  Without an
   accumulator, Z = T.
2. Write Z into C *through the mask*: positions where the mask is true
   take Z's content (including "no entry", which deletes); positions
   where the mask is false keep C's old content, unless ``REPLACE`` is
   set, in which case they are cleared.

Masks can be valued (an entry counts if its value casts to true) or
structural (``GrB_STRUCTURE``: an entry counts if stored), and can be
complemented (``GrB_COMP``); both flags live in the descriptor.
"""

from __future__ import annotations

import numpy as np

from ..core.binaryop import BinaryOp
from ..core.types import BOOL, Type
from .containers import (
    DcsrData,
    MatData,
    VecData,
    in_sorted,
    mat_from_coo,
    pair_keys,
)
from .dispatch import register
from .ewise import mat_union, vec_union

__all__ = [
    "vec_mask_keys",
    "mat_mask_keys",
    "membership",
    "vec_write_back",
    "mat_write_back",
]

_INT = np.int64


def _memo(carrier, structure: bool, compute):
    """Cache a mask's key set on its (immutable) carrier.

    The same mask carrier is typically consulted repeatedly — every BFS
    level re-filters through the visited set, and a planner-pushed mask
    is keyed once for the producing kernel and once at the consumer's
    write-back.  Carriers are frozen, so the keys can never go stale;
    ``object.__setattr__`` sidesteps the frozen-dataclass guard.

    Storing the cache *on* the carrier (rather than in a side table
    keyed by it) is also what makes it free-safe: no global structure
    references the carrier, so after ``GrB_free`` the keys die with it
    and the arrays stay gc-collectable
    (``tests/test_result_cache.py::TestCollectability``).
    """
    cache = getattr(carrier, "_mask_keys", None)
    if cache is None:
        cache = {}
        object.__setattr__(carrier, "_mask_keys", cache)
    keys = cache.get(structure)
    if keys is None:
        keys = cache[structure] = compute()
    return keys


def vec_mask_keys(mask: VecData | None, structure: bool) -> np.ndarray | None:
    """Sorted indices where the (uncomplemented) vector mask is true.

    ``None`` means "no mask" — all positions true.
    """
    if mask is None:
        return None
    if structure:
        return mask.indices

    def compute():
        truth = np.asarray(BOOL.coerce_array(mask.values), dtype=bool)
        return mask.indices[truth]

    return _memo(mask, structure, compute)


def mat_mask_keys(
    mask: "MatData | DcsrData | None", structure: bool
) -> np.ndarray | None:
    """Sorted pair-keys where the (uncomplemented) matrix mask is true."""
    if mask is None:
        return None

    def compute():
        keys = pair_keys(mask.row_indices(), mask.col_indices, mask.ncols)
        if structure:
            return keys
        truth = np.asarray(BOOL.coerce_array(mask.values), dtype=bool)
        return keys[truth]

    return _memo(mask, structure, compute)


def membership(
    keys: np.ndarray, mask_keys: np.ndarray | None, complement: bool,
    space: int | None = None,
) -> np.ndarray:
    """Boolean mask-truth per key, honouring the complement flag.

    With no mask, truth is all-true; a complemented missing mask is
    all-false (so REPLACE then clears the output — the spec corner).
    ``space`` bounds the key universe so large workloads can use the
    dense-LUT membership fast path.
    """
    if mask_keys is None:
        base = np.ones(len(keys), dtype=bool)
    else:
        # Mask key sets are sorted by construction (CSR pair keys,
        # strictly-increasing vector indices): binary-search membership,
        # or a dense lookup table when the universe is small enough.
        base = in_sorted(keys, mask_keys, space=space)
    return ~base if complement else base


def vec_write_back(
    c: VecData,
    t: VecData,
    out_type: Type,
    mask: VecData | None,
    accum: BinaryOp | None,
    *,
    complement: bool = False,
    structure: bool = False,
    replace: bool = False,
) -> VecData:
    """Apply the full ``w⟨m, r⟩ = w ⊙ t`` write-back rule."""
    z = t.astype(out_type) if accum is None else vec_union(
        c.astype(out_type) if c.type != out_type else c, t, accum, out_type
    )
    if mask is None and not complement:
        return z
    mk = vec_mask_keys(mask, structure)
    keep_z = membership(z.indices, mk, complement, space=c.size)
    new_idx = z.indices[keep_z]
    new_vals = z.values[keep_z]
    if not replace:
        keep_c = ~membership(c.indices, mk, complement, space=c.size)
        if keep_c.any():
            c_idx = c.indices[keep_c]
            c_vals = out_type.coerce_array(c.values[keep_c])
            merged = np.concatenate([new_idx, c_idx])
            merged_vals = np.concatenate(
                [new_vals, c_vals]
            ) if new_vals.dtype == c_vals.dtype else np.concatenate(
                [out_type.coerce_array(new_vals), c_vals]
            )
            order = np.argsort(merged, kind="stable")
            return VecData(c.size, out_type, merged[order], merged_vals[order])
    return VecData(c.size, out_type, new_idx, out_type.coerce_array(new_vals))


def mat_write_back(
    c: "MatData | DcsrData",
    t: "MatData | DcsrData",
    out_type: Type,
    mask: "MatData | DcsrData | None",
    accum: BinaryOp | None,
    *,
    complement: bool = False,
    structure: bool = False,
    replace: bool = False,
) -> "MatData | DcsrData":
    """Apply the full ``C⟨M, r⟩ = C ⊙ T`` write-back rule."""
    z = t.astype(out_type) if accum is None else mat_union(
        c.astype(out_type) if c.type != out_type else c, t, accum, out_type
    )
    if mask is None and not complement:
        return z
    mk = mat_mask_keys(mask, structure)
    space = c.nrows * c.ncols
    z_rows = z.row_indices()
    z_keys = pair_keys(z_rows, z.col_indices, z.ncols)
    keep_z = membership(z_keys, mk, complement, space=space)
    new_rows = z_rows[keep_z]
    new_cols = z.col_indices[keep_z]
    new_vals = out_type.coerce_array(z.values[keep_z])
    if not replace:
        c_rows = c.row_indices()
        c_keys = pair_keys(c_rows, c.col_indices, c.ncols)
        keep_c = ~membership(c_keys, mk, complement, space=space)
        if keep_c.any():
            new_rows = np.concatenate([new_rows, c_rows[keep_c]])
            new_cols = np.concatenate([new_cols, c.col_indices[keep_c]])
            new_vals = np.concatenate(
                [new_vals, out_type.coerce_array(c.values[keep_c])]
            )
    return mat_from_coo(c.nrows, c.ncols, out_type, new_rows, new_cols,
                        new_vals)


# Write-back merges run over the sorted COO streams of both carriers —
# native on both storage tiers.
register("mask_write_back", "csr", "dcsr")(mat_write_back)

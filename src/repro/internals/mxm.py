"""Sparse matrix–matrix and matrix–vector multiply kernels.

The SpGEMM kernel is ESC (expand–sort–compress), the classic
linear-algebraic formulation suited to vectorized execution:

1. **Expand** — for every stored A(i,k), enumerate all stored B(k,j)
   partners by a gather driven by ``np.repeat`` over B's row lengths
   (no Python-level loop).
2. **Multiply** — apply the semiring's ⊗ to the two expanded value
   streams (one vectorized call for predefined ops; per-element for
   user-defined ops, the §II penalty).
3. **Sort** — stable sort the product stream by (row, col) pair keys.
4. **Compress** — fold duplicate keys with the semiring's ⊕ monoid via
   ``ufunc.reduceat`` (predefined) or a per-segment loop (user-defined).

``mxv`` and ``vxm`` are specialisations that skip the general sort:
``mxv`` filters A's entries by membership of the column in u (a
``searchsorted`` membership test) and segment-reduces by row, which is
already sorted order in CSR.

Every kernel here is **format-polymorphic**: inputs may be CSR
(``MatData``) or hypersparse DCSR (``DcsrData``).  Row streams come
from ``carrier.row_indices()`` and row-window gathers from
:func:`~.containers.row_gather` (binary search over the nonempty-row
list for DCSR — O(nnz log nrr), never O(nrows)), and outputs assemble
through :func:`~.containers.mat_from_coo`, which picks the output
format by the committed density policy.  ``mxv_multi`` is the blocked
multi-vector kernel the scheduler's small-op batcher targets: one
shared pass over A's structure amortized across many right-hand sides.
"""

from __future__ import annotations

import numpy as np

from ..core.monoid import Monoid
from ..core.semiring import Semiring
from ..core.types import Type
from ..faults.plane import maybe_inject
from . import config
from .containers import (
    DcsrData,
    MatData,
    VecData,
    empty_mat_auto,
    empty_vec,
    in_sorted,
    mat_from_coo,
    pair_keys,
    row_gather,
)
from .dispatch import register

__all__ = ["mxm", "mxv", "vxm", "mxv_multi", "segment_reduce_sorted"]

_INT = np.int64


def _gather_expand(
    src: "MatData | DcsrData", keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """For each row key k, produce the index range of src's row k.

    Returns (flat_gather_indices, expansion_counts).  Fully vectorized:
    the classic "ragged arange" construction, driven by the per-format
    row-window gather (missing DCSR rows expand to nothing).
    """
    lo, hi = row_gather(src, keys)
    counts = (hi - lo).astype(_INT)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=_INT), counts
    starts = lo.astype(_INT)
    # offsets within each segment: arange(total) - repeat(exclusive_cumsum)
    excl = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(_INT)
    offsets = np.arange(total, dtype=_INT) - np.repeat(excl, counts)
    flat = np.repeat(starts, counts) + offsets
    return flat, counts


def segment_reduce_sorted(
    keys: np.ndarray, values: np.ndarray, monoid: Monoid, out_type: Type
) -> tuple[np.ndarray, np.ndarray]:
    """Fold a key-sorted value stream by monoid; returns (unique, folded)."""
    n = len(keys)
    if n == 0:
        return keys, out_type.empty(0)
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(keys[1:], keys[:-1], out=is_start[1:])
    starts = np.flatnonzero(is_start).astype(_INT)
    folded = monoid.reduceat(values, starts)
    return keys[starts], out_type.coerce_array(folded)


def _mult_shortcut(mult_name: str) -> str | None:
    """Which operand gather the multiply operator makes redundant."""
    if mult_name.startswith("GrB_FIRST_"):
        return "first"
    if mult_name.startswith("GrB_SECOND_"):
        return "second"
    if mult_name.startswith("GrB_ONEB_"):
        return "one"
    return None


def mxm(
    a: MatData,
    b: MatData,
    semiring: Semiring,
    mask_keys: np.ndarray | None = None,
    mask_complement: bool = False,
) -> MatData:
    """C = A ⊕.⊗ B (accum and mask *write-back* live in the operations
    layer; ``mask_keys`` optionally pushes a key filter down into the
    kernel so off-mask products die before sort/compress;
    ``mask_complement`` inverts the filter — the BFS pattern where the
    mask is the visited set).
    """
    maybe_inject("kernel.mxm")
    out_type = semiring.out_type
    if a.nvals == 0 or b.nvals == 0:
        return empty_mat_auto(a.nrows, b.ncols, out_type)
    if mask_keys is not None and len(mask_keys) == 0:
        if mask_complement:
            mask_keys = None  # complement of nothing keeps everything
        else:
            return empty_mat_auto(a.nrows, b.ncols, out_type)

    a_rows = a.row_indices()
    flat, counts = _gather_expand(b, a.col_indices)
    if len(flat) == 0:
        return empty_mat_auto(a.nrows, b.ncols, out_type)

    out_rows = np.repeat(a_rows, counts)
    out_cols = b.col_indices[flat]
    keys = pair_keys(out_rows, out_cols, b.ncols)

    keep: np.ndarray | None = None
    if mask_keys is not None:
        # mask_keys come from matrix/vector carriers and are pre-sorted,
        # so binary-search membership beats np.isin's internal sort.
        keep = in_sorted(keys, mask_keys, invert=mask_complement,
                         space=a.nrows * b.ncols)
        if not keep.any():
            return empty_mat_auto(a.nrows, b.ncols, out_type)
        keys = keys[keep]

    shortcut = _mult_shortcut(semiring.mult.name) if config.MULT_SHORTCUTS \
        else None
    if shortcut == "first":
        av = semiring.mult.in1_type.coerce_array(a.values)
        prod = out_type.coerce_array(np.repeat(av, counts))
        if keep is not None:
            prod = prod[keep]
    elif shortcut == "second":
        bv = semiring.mult.in2_type.coerce_array(b.values)
        prod = out_type.coerce_array(bv[flat])
        if keep is not None:
            prod = prod[keep]
    elif shortcut == "one":
        n_out = len(keys)
        prod = out_type.coerce_array(np.ones(n_out, dtype=out_type.np_dtype))
    else:
        av = semiring.mult.in1_type.coerce_array(a.values)
        bv = semiring.mult.in2_type.coerce_array(b.values)
        a_exp = np.repeat(av, counts)
        b_exp = bv[flat]
        if keep is not None:
            a_exp = a_exp[keep]
            b_exp = b_exp[keep]
        prod = semiring.mult.vec(a_exp, b_exp)

    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    prod = prod[order]

    uniq, folded = segment_reduce_sorted(
        keys, semiring.add.type.coerce_array(prod), semiring.add, out_type
    )
    rows = (uniq // b.ncols).astype(_INT)
    cols = (uniq % b.ncols).astype(_INT)
    return mat_from_coo(a.nrows, b.ncols, out_type, rows, cols, folded,
                        presorted=True)


def mxv(
    a: "MatData | DcsrData",
    u: VecData,
    semiring: Semiring,
    mask_keys: np.ndarray | None = None,
    mask_complement: bool = False,
    *,
    a_rows: np.ndarray | None = None,
) -> VecData:
    """w = A ⊕.⊗ u (optional row-index mask push-down).

    ``a_rows`` optionally supplies A's precomputed COO row stream —
    the multi-vector batch kernel shares it across right-hand sides.
    """
    maybe_inject("kernel.mxv")
    out_type = semiring.out_type
    if a.nvals == 0 or u.nvals == 0:
        return empty_vec(a.nrows, out_type)
    if a_rows is None:
        a_rows = a.row_indices()
    # Keep A entries whose column is stored in u.
    pos = np.searchsorted(u.indices, a.col_indices)
    pos_clamped = np.minimum(pos, len(u.indices) - 1)
    hit = u.indices[pos_clamped] == a.col_indices
    if mask_keys is not None and not (len(mask_keys) == 0 and mask_complement):
        hit &= in_sorted(a_rows, mask_keys, invert=mask_complement,
                         space=a.nrows)
    if not hit.any():
        return empty_vec(a.nrows, out_type)
    rows = a_rows[hit]
    av = semiring.mult.in1_type.coerce_array(a.values[hit])
    uv = semiring.mult.in2_type.coerce_array(u.values[pos_clamped[hit]])
    prod = semiring.mult.vec(av, uv)
    # Row-major carrier order means `rows` is already sorted.
    uniq, folded = segment_reduce_sorted(
        rows, semiring.add.type.coerce_array(prod), semiring.add, out_type
    )
    return VecData(a.nrows, out_type, uniq, folded)


def mxv_multi(
    a: "MatData | DcsrData",
    us: "list[VecData]",
    semiring: Semiring,
) -> "list[VecData]":
    """Blocked multi-vector product: w_k = A ⊕.⊗ u_k for every u_k.

    The scheduler's small-op batcher funnels many pending unmasked
    ``mxv`` nodes over the *same* committed A into one call, so A's
    row-stream expansion (O(nrows + nnz) for CSR) and kernel entry
    bookkeeping are paid once instead of once per vector.
    """
    maybe_inject("kernel.mxv_multi")
    a_rows = a.row_indices() if a.nvals else None
    return [mxv(a, u, semiring, a_rows=a_rows) for u in us]


def vxm(
    u: VecData,
    a: "MatData | DcsrData",
    semiring: Semiring,
    mask_keys: np.ndarray | None = None,
    mask_complement: bool = False,
) -> VecData:
    """w' = u' ⊕.⊗ A (gather the A rows selected by u's pattern;
    optional column-index mask push-down — the masked-BFS hot path)."""
    maybe_inject("kernel.vxm")
    out_type = semiring.out_type
    if a.nvals == 0 or u.nvals == 0:
        return empty_vec(a.ncols, out_type)
    flat, counts = _gather_expand(a, u.indices)
    if len(flat) == 0:
        return empty_vec(a.ncols, out_type)
    out_cols = a.col_indices[flat]
    uv = semiring.mult.in1_type.coerce_array(u.values)
    av = semiring.mult.in2_type.coerce_array(a.values)
    u_exp = np.repeat(uv, counts)
    a_exp = av[flat]
    if mask_keys is not None and not (len(mask_keys) == 0 and mask_complement):
        keep = in_sorted(out_cols, mask_keys, invert=mask_complement,
                         space=a.ncols)
        if not keep.any():
            return empty_vec(a.ncols, out_type)
        out_cols = out_cols[keep]
        u_exp = u_exp[keep]
        a_exp = a_exp[keep]
    prod = semiring.mult.vec(u_exp, a_exp)
    order = np.argsort(out_cols, kind="stable")
    uniq, folded = segment_reduce_sorted(
        out_cols[order], semiring.add.type.coerce_array(prod[order]),
        semiring.add, out_type,
    )
    return VecData(a.ncols, out_type, uniq, folded)


# The whole mxm family is native on both storage tiers: every access
# goes through the polymorphic row stream / row-window gather above.
register("mxm", "csr", "dcsr")(mxm)
register("mxv", "csr", "dcsr")(mxv)
register("mxv_multi", "csr", "dcsr")(mxv_multi)
register("vxm", "csr", "dcsr")(vxm)

"""Reduction kernels: matrix→vector, matrix→scalar, vector→scalar.

Scalar reductions come in two flavours per §VI:

* the classic typed variant returns the monoid identity on an empty
  container;
* the ``GrB_Scalar`` variant (Table II) instead returns *empty* — the
  kernel layer signals that by returning ``None``, and the operations
  layer maps it onto an empty :class:`~repro.core.scalar.Scalar`.
  Table II also adds reduction with a plain associative ``GrB_BinaryOp``
  (no identity needed, since emptiness is now representable).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.binaryop import BinaryOp
from ..core.monoid import Monoid
from ..core.types import Type
from ..faults.plane import maybe_inject
from .containers import DcsrData, MatData, VecData
from .dispatch import register

__all__ = [
    "mat_reduce_rows",
    "mat_reduce_scalar",
    "vec_reduce_scalar",
    "reduce_with_binop",
]

_INT = np.int64


@register("reduce_rows", "csr")
def _csr_reduce_rows(a: MatData, monoid: Monoid, out_type: Type) -> VecData:
    """w(i) = ⊕_j A(i,j): fold each CSR row segment (empty rows absent)."""
    lens = a.row_lengths()
    nonempty = np.flatnonzero(lens > 0).astype(_INT)
    if len(nonempty) == 0:
        return VecData(a.nrows, out_type, nonempty, out_type.empty(0))
    starts = a.indptr[nonempty]
    vals = monoid.reduceat(monoid.type.coerce_array(a.values), starts)
    return VecData(a.nrows, out_type, nonempty, out_type.coerce_array(vals))


@register("reduce_rows", "dcsr")
def _dcsr_reduce_rows(a: DcsrData, monoid: Monoid, out_type: Type) -> VecData:
    """Native hypersparse row reduction: the nonempty-row list *is* the
    output index set, and the compressed pointer's leading entries are
    the reduceat segment starts — O(nnz), no row scan."""
    if a.nvals == 0:
        return VecData(a.nrows, out_type, np.empty(0, dtype=_INT),
                       out_type.empty(0))
    starts = a.indptr[:-1]
    vals = monoid.reduceat(monoid.type.coerce_array(a.values), starts)
    return VecData(a.nrows, out_type, a.row_ids, out_type.coerce_array(vals))


def mat_reduce_rows(
    a: "MatData | DcsrData", monoid: Monoid, out_type: Type
) -> VecData:
    """Format-dispatched w(i) = ⊕_j A(i,j)."""
    maybe_inject("kernel.reduce")
    from .dispatch import resolve

    return resolve("reduce_rows", a)(a, monoid, out_type)


def mat_reduce_scalar(a: "MatData | DcsrData", monoid: Monoid) -> Any | None:
    """⊕ over all stored values; ``None`` when the matrix is empty."""
    maybe_inject("kernel.reduce")
    if a.nvals == 0:
        return None
    return monoid.reduce_array(monoid.type.coerce_array(a.values))


def vec_reduce_scalar(u: VecData, monoid: Monoid) -> Any | None:
    """⊕ over all stored values; ``None`` when the vector is empty."""
    maybe_inject("kernel.reduce")
    if u.nvals == 0:
        return None
    return monoid.reduce_array(monoid.type.coerce_array(u.values))


def reduce_with_binop(values: np.ndarray, op: BinaryOp) -> Any | None:
    """Left fold with a plain binary op (the Table II binop-reduce).

    The operator must be ``T x T -> T`` associative; with no identity
    available, an empty input folds to ``None`` (→ empty GrB_Scalar).
    """
    if len(values) == 0:
        return None
    values = op.in1_type.coerce_array(values)
    uf = op.ufunc
    if uf is not None and values.dtype != object:
        return op.out_type.coerce_scalar(uf.reduce(values))
    acc = values[0]
    sc = op.scalar
    for v in values[1:]:
        acc = sc(acc, v)
    return op.out_type.coerce_scalar(acc)

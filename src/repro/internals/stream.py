"""Batched edge-delta plumbing for the streaming-ingest fast path.

A "delta" is one batched write against a committed matrix carrier:
COO triples normalized to row-major sorted order with last-write-wins
duplicate resolution, split into *overwrites* (the key already exists
in the base) and *inserts* (genuinely new edges).  The same
:class:`WriteDelta` object drives three layers:

* :func:`apply_delta` — the merge kernel.  Because both the base
  carrier and the delta are sorted, one ``searchsorted`` gives every
  delta key's position in the base and a ``bincount``/``cumsum`` pair
  gives every output slot, so the merged carrier is assembled in
  O(nnz + d log d) — no concatenate-and-lexsort over the full COO
  stream (the pre-delta ``apply_edges`` paid O(nnz log nnz) per
  mutation).
* :mod:`repro.engine.memo`'s patch tier — ``Matrix.update_batch``
  hands the delta to ``patch_handle_blocks`` so dependent memo entries
  with a patch rule (:mod:`repro.algorithms.delta`) are updated from
  the write set instead of dropped.
* :mod:`repro.serve` — ``GraphService`` records per-generation deltas
  so tenant sessions can advance a cached view in place.

Library writes (``Matrix.update_batch``), live serving mutations, and
journal replay all funnel through these helpers, so a replayed journal
reproduces the exact carrier the live path published.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.errors import IndexOutOfBoundsError, InvalidValueError
from ..core.types import Type
from .containers import in_sorted, mat_from_coo, pair_keys

__all__ = [
    "WriteDelta",
    "coerce_edges",
    "build_delta",
    "apply_delta",
    "insert_edges",
]

_INT = np.int64


@dataclass(frozen=True)
class WriteDelta:
    """One batched write, normalized against a committed base carrier.

    ``rows``/``cols``/``vals`` are row-major sorted with unique keys
    (duplicates in the input batch resolved last-write-wins); ``vals``
    is already coerced to the base's value type.  ``is_new`` marks the
    entries whose key is absent from ``base`` — the write's *structural*
    part; ``~is_new`` entries only overwrite stored values.  ``base``
    is the pre-write carrier, kept so patch rules can consult the old
    adjacency (e.g. wedge counts for incremental triangles).
    """

    base: Any
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    is_new: np.ndarray

    @property
    def n(self) -> int:
        return len(self.rows)

    @property
    def n_new(self) -> int:
        return int(np.count_nonzero(self.is_new))

    def new_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """The genuinely-new (row, col) pairs, row-major sorted."""
        return self.rows[self.is_new], self.cols[self.is_new]

    def new_symmetric(self) -> bool:
        """True when the new-edge set is symmetric and loop-free.

        The precondition under which the undirected incremental rules
        (components union-find, triangle wedge counting) are exact.
        Deltas are small by the cost gate, so a Python pair set is fine.
        """
        r, c = self.new_edges()
        if np.any(r == c):
            return False
        pairs = set(zip(r.tolist(), c.tolist()))
        return all((b, a) in pairs for (a, b) in pairs)


def _coerce_batch(
    base: Any, rows, cols, vals,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    t: Type = base.type
    r = np.asarray(rows, dtype=_INT).reshape(-1)
    c = np.asarray(cols, dtype=_INT).reshape(-1)
    v = t.coerce_array(np.asarray(vals, dtype=t.np_dtype).reshape(-1))
    if not (len(r) == len(c) == len(v)):
        raise InvalidValueError(
            f"delta arrays disagree: {len(r)} rows, {len(c)} cols, "
            f"{len(v)} values"
        )
    if len(r) and (
        r.min() < 0 or c.min() < 0
        or r.max() >= base.nrows or c.max() >= base.ncols
    ):
        raise IndexOutOfBoundsError(
            f"delta index outside {base.nrows}x{base.ncols}"
        )
    return r, c, v


def coerce_edges(
    base: Any, rows, cols, vals,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate + coerce an edge batch against *base*'s shape and type.

    The ingest buffer's admission check: a bad batch must be rejected
    at ``ingest_edges`` time (while the caller's stack is live), not at
    some later flush.  Returns ``(rows, cols, vals)`` as contiguous
    arrays ready to buffer.
    """
    return _coerce_batch(base, rows, cols, vals)


def build_delta(base: Any, rows, cols, vals) -> WriteDelta:
    """Normalize a COO batch into a :class:`WriteDelta` against *base*.

    Validation (lengths, bounds, dtype coercion) happens here, eagerly
    — a bad batch raises before any handle version moves.  Duplicate
    (row, col) pairs within the batch keep the last value, matching
    ``GrB_Matrix_build`` with an implicit SECOND dup.
    """
    r, c, v = _coerce_batch(base, rows, cols, vals)
    keys = pair_keys(r, c, base.ncols)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    # Last-write-wins: among equal keys the stable sort keeps input
    # order, so the *last* element of each run is the surviving write.
    if len(keys) > 1:
        last = np.empty(len(keys), dtype=bool)
        last[:-1] = keys[:-1] != keys[1:]
        last[-1] = True
        order = order[last]
        keys = keys[last]
    r, c, v = r[order], c[order], v[order]
    base_keys = pair_keys(base.row_indices(), base.col_indices, base.ncols)
    is_new = in_sorted(keys, base_keys, invert=True)
    return WriteDelta(base=base, rows=r, cols=c, vals=v, is_new=is_new)


def _merge_sorted(
    d: Any,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    is_new: np.ndarray,
) -> Any:
    """Positional merge of a sorted, unique batch into carrier *d*.

    ``is_new`` must mark exactly the keys absent from *d*.  Output goes
    back through :func:`mat_from_coo` so the format policy can repack.
    """
    t: Type = d.type
    base_rows = d.row_indices()
    base_cols = d.col_indices
    base_keys = pair_keys(base_rows, base_cols, d.ncols)
    keys = pair_keys(rows, cols, d.ncols)
    pos = np.searchsorted(base_keys, keys)
    nnz = d.nvals
    pos_ins = pos[is_new]
    n_ins = len(pos_ins)
    # prefix[i] = inserts landing at or before base slot i, which is
    # exactly how far existing entry i shifts right in the output.
    prefix = np.cumsum(np.bincount(pos_ins, minlength=nnz + 1))
    dst_exist = np.arange(nnz, dtype=_INT) + prefix[:nnz]
    dst_ins = pos_ins + np.arange(n_ins, dtype=_INT)
    out_rows = np.empty(nnz + n_ins, dtype=_INT)
    out_cols = np.empty(nnz + n_ins, dtype=_INT)
    out_vals = t.empty(nnz + n_ins)
    out_rows[dst_exist] = base_rows
    out_cols[dst_exist] = base_cols
    out_vals[dst_exist] = d.values
    out_rows[dst_ins] = rows[is_new]
    out_cols[dst_ins] = cols[is_new]
    out_vals[dst_ins] = vals[is_new]
    dup = ~is_new
    if dup.any():
        out_vals[dst_exist[pos[dup]]] = vals[dup]
    return mat_from_coo(
        d.nrows, d.ncols, t, out_rows, out_cols, out_vals, presorted=True
    )


def apply_delta(base: Any, delta: WriteDelta) -> Any:
    """The merged carrier: *base* with *delta*'s writes applied."""
    from ..engine.stats import STATS

    if delta.n == 0:
        return base
    out = _merge_sorted(base, delta.rows, delta.cols, delta.vals, delta.is_new)
    STATS.bump("ingest_fast_merges")
    return out


def insert_edges(
    d: Any, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray,
) -> Any:
    """Insert a sorted, unique, *disjoint* edge batch into carrier *d*.

    The patch rules' workhorse: new edges are absent from every derived
    pattern of the old graph by construction, so the whole batch is an
    insert-only merge.
    """
    if len(rows) == 0:
        return d
    return _merge_sorted(d, rows, cols, vals, np.ones(len(rows), dtype=bool))

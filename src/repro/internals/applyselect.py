"""Kernels for ``apply`` (unary / bound-binary / index-unary) and ``select``.

These are the Section VIII operations.  Apply maps every stored value;
select filters the structure using a boolean-returning index-unary
operator — "the equivalent of a functional input mask" (§VIII-C).

Index-aware kernels receive the stored values *and* their coordinates.
For vectors the column index passed to the operator is 0, so operators
like ROWLE work unchanged on vectors while COLINDEX degenerates to ``s``
(matching the 2.0 treatment that removes the paper's
undefined-behaviour corner for single-index operators).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.binaryop import BinaryOp
from ..core.indexunaryop import IndexUnaryOp
from ..core.types import Type
from ..core.unaryop import UnaryOp
from ..faults.plane import maybe_inject
from .containers import DcsrData, MatData, VecData, mat_from_coo
from .dispatch import register

__all__ = [
    "vec_apply_unary",
    "mat_apply_unary",
    "vec_apply_bind1st",
    "vec_apply_bind2nd",
    "mat_apply_bind1st",
    "mat_apply_bind2nd",
    "vec_apply_index",
    "mat_apply_index",
    "vec_select",
    "mat_select",
    "run_stages",
    "vec_pipeline",
    "mat_pipeline",
]

_INT = np.int64


# ---------------------------------------------------------------------------
# Unary apply
# ---------------------------------------------------------------------------

def vec_apply_unary(u: VecData, op: UnaryOp, out_type: Type) -> VecData:
    maybe_inject("kernel.apply")
    vals = op.vec(op.in_type.coerce_array(u.values))
    return VecData(u.size, out_type, u.indices, out_type.coerce_array(vals))


def mat_apply_unary(
    a: "MatData | DcsrData", op: UnaryOp, out_type: Type
) -> "MatData | DcsrData":
    maybe_inject("kernel.apply")
    vals = op.vec(op.in_type.coerce_array(a.values))
    # Value-only rewrite: the structure (and so the storage format) is
    # preserved whatever the carrier tier.
    return a.with_values(out_type, out_type.coerce_array(vals))


# ---------------------------------------------------------------------------
# Bound-binary apply (scalar bound to the first or second argument)
# ---------------------------------------------------------------------------

def _bind1st(op: BinaryOp, s: Any, values: np.ndarray, out_type: Type) -> np.ndarray:
    x = np.full(len(values), op.in1_type.coerce_scalar(s),
                dtype=op.in1_type.np_dtype)
    y = op.in2_type.coerce_array(values)
    return out_type.coerce_array(op.vec(x, y))


def _bind2nd(op: BinaryOp, values: np.ndarray, s: Any, out_type: Type) -> np.ndarray:
    x = op.in1_type.coerce_array(values)
    y = np.full(len(values), op.in2_type.coerce_scalar(s),
                dtype=op.in2_type.np_dtype)
    return out_type.coerce_array(op.vec(x, y))


def vec_apply_bind1st(s: Any, u: VecData, op: BinaryOp, out_type: Type) -> VecData:
    maybe_inject("kernel.apply")
    return VecData(u.size, out_type, u.indices, _bind1st(op, s, u.values, out_type))


def vec_apply_bind2nd(u: VecData, s: Any, op: BinaryOp, out_type: Type) -> VecData:
    maybe_inject("kernel.apply")
    return VecData(u.size, out_type, u.indices, _bind2nd(op, u.values, s, out_type))


def mat_apply_bind1st(
    s: Any, a: "MatData | DcsrData", op: BinaryOp, out_type: Type
) -> "MatData | DcsrData":
    maybe_inject("kernel.apply")
    return a.with_values(out_type, _bind1st(op, s, a.values, out_type))


def mat_apply_bind2nd(
    a: "MatData | DcsrData", s: Any, op: BinaryOp, out_type: Type
) -> "MatData | DcsrData":
    maybe_inject("kernel.apply")
    return a.with_values(out_type, _bind2nd(op, a.values, s, out_type))


# ---------------------------------------------------------------------------
# Index-unary apply / select (§VIII)
# ---------------------------------------------------------------------------

def _index_op_values(
    op: IndexUnaryOp,
    values: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    s: Any,
) -> np.ndarray:
    if op.in_type is not None:
        values = op.in_type.coerce_array(values)
    s = op.s_type.coerce_scalar(s)
    return op.vec(values, rows, cols, s)


def vec_apply_index(
    u: VecData, op: IndexUnaryOp, s: Any, out_type: Type
) -> VecData:
    """w = f(u, ind(u), 1, s) — §VIII-B vector variant."""
    maybe_inject("kernel.apply")
    cols = np.zeros(u.nvals, dtype=_INT)
    vals = _index_op_values(op, u.values, u.indices, cols, s)
    return VecData(u.size, out_type, u.indices, out_type.coerce_array(vals))


def mat_apply_index(
    a: "MatData | DcsrData", op: IndexUnaryOp, s: Any, out_type: Type
) -> "MatData | DcsrData":
    """C = f(A, ind(A), 2, s) — §VIII-B matrix variant."""
    maybe_inject("kernel.apply")
    rows = a.row_indices()
    vals = _index_op_values(op, a.values, rows, a.col_indices, s)
    return a.with_values(out_type, out_type.coerce_array(vals))


def vec_select(u: VecData, op: IndexUnaryOp, s: Any) -> VecData:
    """w = u⟨f(u, ind(u), 1, s)⟩ — §VIII-C vector variant."""
    maybe_inject("kernel.select")
    cols = np.zeros(u.nvals, dtype=_INT)
    keep = np.asarray(
        _index_op_values(op, u.values, u.indices, cols, s), dtype=bool
    )
    return VecData(u.size, u.type, u.indices[keep], u.values[keep])


def mat_select(
    a: "MatData | DcsrData", op: IndexUnaryOp, s: Any
) -> "MatData | DcsrData":
    """C = A⟨f(A, ind(A), 2, s)⟩ — §VIII-C matrix variant."""
    maybe_inject("kernel.select")
    rows = a.row_indices()
    keep = np.asarray(
        _index_op_values(op, a.values, rows, a.col_indices, s), dtype=bool
    )
    return mat_from_coo(
        a.nrows, a.ncols, a.type,
        rows[keep], a.col_indices[keep], a.values[keep],
        presorted=True,
    )


# ---------------------------------------------------------------------------
# Fused stage pipelines (engine kernel fusion entry points)
# ---------------------------------------------------------------------------
#
# The execution engine's fusion pass collapses apply/select/transpose
# chains into a *stage list* and runs it here in one pass over the
# stored entries — no intermediate carriers, and for matrices the CSR
# row pointer is rebuilt at most once at the end (plus at explicit
# transposes) instead of once per operation.  Stage tuples:
#
#   ('unary',   op, out_type)       elementwise unary apply
#   ('bind1st', op, s, out_type)    binary apply, scalar bound first
#   ('bind2nd', op, s, out_type)    binary apply, scalar bound second
#   ('index',   op, s, out_type)    index-unary apply (reads coords)
#   ('select',  op, s)              structural filter (§VIII-C)
#   ('transpose',)                  matrix transpose (matrix only)
#   ('cast',    out_type)           domain cast (no-op when equal)

def vec_pipeline(u: VecData, stages: list) -> VecData:
    """Run a fused stage list over a vector carrier in one pass."""
    maybe_inject("kernel.pipeline")
    t = u.type
    indices, values = u.indices, u.values
    for st in stages:
        kind = st[0]
        if kind == "unary":
            op, out_t = st[1], st[2]
            values = out_t.coerce_array(op.vec(op.in_type.coerce_array(values)))
            t = out_t
        elif kind == "bind1st":
            op, s, out_t = st[1], st[2], st[3]
            values = _bind1st(op, s, values, out_t)
            t = out_t
        elif kind == "bind2nd":
            op, s, out_t = st[1], st[2], st[3]
            values = _bind2nd(op, values, s, out_t)
            t = out_t
        elif kind == "index":
            op, s, out_t = st[1], st[2], st[3]
            cols = np.zeros(len(indices), dtype=_INT)
            values = out_t.coerce_array(
                _index_op_values(op, values, indices, cols, s)
            )
            t = out_t
        elif kind == "select":
            op, s = st[1], st[2]
            cols = np.zeros(len(indices), dtype=_INT)
            keep = np.asarray(
                _index_op_values(op, values, indices, cols, s), dtype=bool
            )
            indices = indices[keep]
            values = values[keep]
        elif kind == "cast":
            out_t = st[1]
            if out_t != t:
                values = out_t.coerce_array(values)
                t = out_t
        else:
            raise ValueError(f"vector pipeline cannot run stage {kind!r}")
    return VecData(u.size, t, indices, values)


def mat_pipeline(a: "MatData | DcsrData", stages: list) -> "MatData | DcsrData":
    """Run a fused stage list over a matrix carrier (either tier).

    COO row indices are materialized lazily (first coordinate-reading
    stage) and the row pointer is rebuilt only when a filter changed
    the structure — once at the end, or at a transpose boundary.
    Value-only chains preserve the input carrier's storage format;
    structure-dirtying chains reassemble through the format policy.
    """
    maybe_inject("kernel.pipeline")
    cur = a         # structure donor (carrier whose pointer is current)
    nrows, ncols, t = a.nrows, a.ncols, a.type
    cols, values = a.col_indices, a.values
    rows = None     # COO rows; materialized on demand while cur is valid
    dirty = False   # True once a select invalidated cur's structure

    def _coo_rows():
        nonlocal rows
        if rows is None:
            rows = cur.row_indices()
        return rows

    def _finalize() -> "MatData | DcsrData":
        if dirty:
            return mat_from_coo(nrows, ncols, t, rows, cols, values,
                                presorted=True)
        return cur.with_values(t, values)

    for st in stages:
        kind = st[0]
        if kind == "unary":
            op, out_t = st[1], st[2]
            values = out_t.coerce_array(op.vec(op.in_type.coerce_array(values)))
            t = out_t
        elif kind == "bind1st":
            op, s, out_t = st[1], st[2], st[3]
            values = _bind1st(op, s, values, out_t)
            t = out_t
        elif kind == "bind2nd":
            op, s, out_t = st[1], st[2], st[3]
            values = _bind2nd(op, values, s, out_t)
            t = out_t
        elif kind == "index":
            op, s, out_t = st[1], st[2], st[3]
            values = out_t.coerce_array(
                _index_op_values(op, values, _coo_rows(), cols, s)
            )
            t = out_t
        elif kind == "select":
            op, s = st[1], st[2]
            keep = np.asarray(
                _index_op_values(op, values, _coo_rows(), cols, s), dtype=bool
            )
            rows = rows[keep]
            cols = cols[keep]
            values = values[keep]
            dirty = True
        elif kind == "transpose":
            m = _finalize().transpose()
            cur = m
            nrows, ncols, t = m.nrows, m.ncols, m.type
            cols, values = m.col_indices, m.values
            rows = None
            dirty = False
        elif kind == "cast":
            out_t = st[1]
            if out_t != t:
                values = out_t.coerce_array(values)
                t = out_t
        else:
            raise ValueError(f"matrix pipeline cannot run stage {kind!r}")
    return _finalize()


def run_stages(carrier, stages: list):
    """Dispatch a fused stage list to the right pipeline runner."""
    if isinstance(carrier, VecData):
        return vec_pipeline(carrier, stages)
    return mat_pipeline(carrier, stages)


# apply/select/pipeline are native on both storage tiers: value-only
# rewrites preserve the carrier, structural filters reassemble through
# the format policy.
register("apply", "csr", "dcsr")(mat_apply_unary)
register("apply_index", "csr", "dcsr")(mat_apply_index)
register("select", "csr", "dcsr")(mat_select)
register("pipeline", "csr", "dcsr")(mat_pipeline)

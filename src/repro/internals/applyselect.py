"""Kernels for ``apply`` (unary / bound-binary / index-unary) and ``select``.

These are the Section VIII operations.  Apply maps every stored value;
select filters the structure using a boolean-returning index-unary
operator — "the equivalent of a functional input mask" (§VIII-C).

Index-aware kernels receive the stored values *and* their coordinates.
For vectors the column index passed to the operator is 0, so operators
like ROWLE work unchanged on vectors while COLINDEX degenerates to ``s``
(matching the 2.0 treatment that removes the paper's
undefined-behaviour corner for single-index operators).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.binaryop import BinaryOp
from ..core.indexunaryop import IndexUnaryOp
from ..core.types import Type
from ..core.unaryop import UnaryOp
from .containers import MatData, VecData, csr_to_coo_rows

__all__ = [
    "vec_apply_unary",
    "mat_apply_unary",
    "vec_apply_bind1st",
    "vec_apply_bind2nd",
    "mat_apply_bind1st",
    "mat_apply_bind2nd",
    "vec_apply_index",
    "mat_apply_index",
    "vec_select",
    "mat_select",
]

_INT = np.int64


# ---------------------------------------------------------------------------
# Unary apply
# ---------------------------------------------------------------------------

def vec_apply_unary(u: VecData, op: UnaryOp, out_type: Type) -> VecData:
    vals = op.vec(op.in_type.coerce_array(u.values))
    return VecData(u.size, out_type, u.indices, out_type.coerce_array(vals))


def mat_apply_unary(a: MatData, op: UnaryOp, out_type: Type) -> MatData:
    vals = op.vec(op.in_type.coerce_array(a.values))
    return MatData(
        a.nrows, a.ncols, out_type,
        a.indptr, a.col_indices, out_type.coerce_array(vals),
    )


# ---------------------------------------------------------------------------
# Bound-binary apply (scalar bound to the first or second argument)
# ---------------------------------------------------------------------------

def _bind1st(op: BinaryOp, s: Any, values: np.ndarray, out_type: Type) -> np.ndarray:
    x = np.full(len(values), op.in1_type.coerce_scalar(s),
                dtype=op.in1_type.np_dtype)
    y = op.in2_type.coerce_array(values)
    return out_type.coerce_array(op.vec(x, y))


def _bind2nd(op: BinaryOp, values: np.ndarray, s: Any, out_type: Type) -> np.ndarray:
    x = op.in1_type.coerce_array(values)
    y = np.full(len(values), op.in2_type.coerce_scalar(s),
                dtype=op.in2_type.np_dtype)
    return out_type.coerce_array(op.vec(x, y))


def vec_apply_bind1st(s: Any, u: VecData, op: BinaryOp, out_type: Type) -> VecData:
    return VecData(u.size, out_type, u.indices, _bind1st(op, s, u.values, out_type))


def vec_apply_bind2nd(u: VecData, s: Any, op: BinaryOp, out_type: Type) -> VecData:
    return VecData(u.size, out_type, u.indices, _bind2nd(op, u.values, s, out_type))


def mat_apply_bind1st(s: Any, a: MatData, op: BinaryOp, out_type: Type) -> MatData:
    return MatData(a.nrows, a.ncols, out_type, a.indptr, a.col_indices,
                   _bind1st(op, s, a.values, out_type))


def mat_apply_bind2nd(a: MatData, s: Any, op: BinaryOp, out_type: Type) -> MatData:
    return MatData(a.nrows, a.ncols, out_type, a.indptr, a.col_indices,
                   _bind2nd(op, a.values, s, out_type))


# ---------------------------------------------------------------------------
# Index-unary apply / select (§VIII)
# ---------------------------------------------------------------------------

def _index_op_values(
    op: IndexUnaryOp,
    values: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    s: Any,
) -> np.ndarray:
    if op.in_type is not None:
        values = op.in_type.coerce_array(values)
    s = op.s_type.coerce_scalar(s)
    return op.vec(values, rows, cols, s)


def vec_apply_index(
    u: VecData, op: IndexUnaryOp, s: Any, out_type: Type
) -> VecData:
    """w = f(u, ind(u), 1, s) — §VIII-B vector variant."""
    cols = np.zeros(u.nvals, dtype=_INT)
    vals = _index_op_values(op, u.values, u.indices, cols, s)
    return VecData(u.size, out_type, u.indices, out_type.coerce_array(vals))


def mat_apply_index(
    a: MatData, op: IndexUnaryOp, s: Any, out_type: Type
) -> MatData:
    """C = f(A, ind(A), 2, s) — §VIII-B matrix variant."""
    rows = csr_to_coo_rows(a.indptr, a.nrows)
    vals = _index_op_values(op, a.values, rows, a.col_indices, s)
    return MatData(a.nrows, a.ncols, out_type, a.indptr, a.col_indices,
                   out_type.coerce_array(vals))


def vec_select(u: VecData, op: IndexUnaryOp, s: Any) -> VecData:
    """w = u⟨f(u, ind(u), 1, s)⟩ — §VIII-C vector variant."""
    cols = np.zeros(u.nvals, dtype=_INT)
    keep = np.asarray(
        _index_op_values(op, u.values, u.indices, cols, s), dtype=bool
    )
    return VecData(u.size, u.type, u.indices[keep], u.values[keep])


def mat_select(a: MatData, op: IndexUnaryOp, s: Any) -> MatData:
    """C = A⟨f(A, ind(A), 2, s)⟩ — §VIII-C matrix variant."""
    rows = csr_to_coo_rows(a.indptr, a.nrows)
    keep = np.asarray(
        _index_op_values(op, a.values, rows, a.col_indices, s), dtype=bool
    )
    new_cols = a.col_indices[keep]
    new_vals = a.values[keep]
    kept_rows = rows[keep]
    indptr = np.zeros(a.nrows + 1, dtype=_INT)
    if len(kept_rows):
        counts = np.bincount(kept_rows, minlength=a.nrows)
        np.cumsum(counts, out=indptr[1:])
    return MatData(a.nrows, a.ncols, a.type, indptr, new_cols, new_vals)

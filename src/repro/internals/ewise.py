"""Elementwise union (eWiseAdd) and intersection (eWiseMult) kernels.

Both operate on the sorted index streams of the carriers:

* **intersection** — only positions stored in *both* inputs survive;
  the operator is applied pairwise.
* **union** — positions stored in either input survive; where only one
  input has a value it is copied (cast) through unchanged, exactly as
  the GraphBLAS ``eWiseAdd`` definition requires (the "add" op is only
  applied where both are present).

The matrix kernels exploit that a canonical carrier's (row, col)
stream is globally sorted — true of CSR *and* of the hypersparse DCSR
tier — reducing matrix eWise to the vector merge over scalar pair-keys;
the whole family is format-polymorphic via ``carrier.row_indices()``
and assembles its output through the format policy.

The *intersection* kernels accept an optional planner-pushed mask
filter (``mask_keys`` — sorted keys in the output coordinate space,
``mask_complement``): surviving keys are membership-tested right after
the merge, before the operator runs, so off-mask entries never have
values computed — the eWise analogue of the masked-SpGEMM push-down.
The mxm convention applies: ``mask_keys=None`` means no filter, and an
*empty* key set with ``complement=True`` keeps everything.
"""

from __future__ import annotations

import numpy as np

from ..core.binaryop import BinaryOp
from ..core.types import Type
from ..faults.plane import maybe_inject
from .containers import (
    DcsrData,
    MatData,
    VecData,
    in_sorted,
    mat_from_coo,
    pair_keys,
)
from .dispatch import register

__all__ = [
    "vec_intersect",
    "vec_union",
    "mat_intersect",
    "mat_union",
]

_INT = np.int64


def _merged_values(
    op: BinaryOp,
    out_type: Type,
    a_vals: np.ndarray,
    b_vals: np.ndarray,
) -> np.ndarray:
    """Apply op to aligned value arrays, casting per the op's domains."""
    x = op.in1_type.coerce_array(a_vals)
    y = op.in2_type.coerce_array(b_vals)
    return out_type.coerce_array(op.vec(x, y))


def _intersect_sorted(
    a_keys: np.ndarray, b_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Positions of common keys in two sorted unique key arrays.

    Returns (common_keys, idx_in_a, idx_in_b).
    """
    common, ia, ib = np.intersect1d(a_keys, b_keys, assume_unique=True,
                                    return_indices=True)
    return common, ia, ib


def _filter_common(common, ia, ib, mask_keys, mask_complement, space):
    """Drop merged keys the pushed mask filter rules out (pre-values)."""
    if mask_keys is None or (len(mask_keys) == 0 and mask_complement):
        return common, ia, ib
    keep = in_sorted(common, mask_keys, invert=mask_complement, space=space)
    return common[keep], ia[keep], ib[keep]


def vec_intersect(
    a: VecData,
    b: VecData,
    op: BinaryOp,
    out_type: Type,
    mask_keys: np.ndarray | None = None,
    mask_complement: bool = False,
) -> VecData:
    """w = A .* B over the structural intersection."""
    maybe_inject("kernel.ewise")
    common, ia, ib = _intersect_sorted(a.indices, b.indices)
    common, ia, ib = _filter_common(
        common, ia, ib, mask_keys, mask_complement, a.size
    )
    vals = _merged_values(op, out_type, a.values[ia], b.values[ib])
    return VecData(a.size, out_type, common, vals)


def vec_union(
    a: VecData, b: VecData, op: BinaryOp, out_type: Type
) -> VecData:
    """w = A + B over the structural union."""
    maybe_inject("kernel.ewise")
    if a.nvals == 0:
        return VecData(a.size, out_type, b.indices, out_type.coerce_array(b.values))
    if b.nvals == 0:
        return VecData(a.size, out_type, a.indices, out_type.coerce_array(a.values))
    union = np.union1d(a.indices, b.indices)
    in_a = np.isin(union, a.indices, assume_unique=True)
    in_b = np.isin(union, b.indices, assume_unique=True)
    both = in_a & in_b
    out_vals = out_type.empty(len(union))

    only_a = in_a & ~both
    only_b = in_b & ~both
    out_vals[only_a] = out_type.coerce_array(
        a.values[np.searchsorted(a.indices, union[only_a])]
    )
    out_vals[only_b] = out_type.coerce_array(
        b.values[np.searchsorted(b.indices, union[only_b])]
    )
    if both.any():
        av = a.values[np.searchsorted(a.indices, union[both])]
        bv = b.values[np.searchsorted(b.indices, union[both])]
        out_vals[both] = _merged_values(op, out_type, av, bv)
    return VecData(a.size, out_type, union, out_vals)


def mat_intersect(
    a: "MatData | DcsrData",
    b: "MatData | DcsrData",
    op: BinaryOp,
    out_type: Type,
    mask_keys: np.ndarray | None = None,
    mask_complement: bool = False,
) -> "MatData | DcsrData":
    """C = A .* B over the structural intersection."""
    maybe_inject("kernel.ewise")
    a_keys = pair_keys(a.row_indices(), a.col_indices, a.ncols)
    b_keys = pair_keys(b.row_indices(), b.col_indices, b.ncols)
    common, ia, ib = _intersect_sorted(a_keys, b_keys)
    common, ia, ib = _filter_common(
        common, ia, ib, mask_keys, mask_complement, a.nrows * a.ncols
    )
    vals = _merged_values(op, out_type, a.values[ia], b.values[ib])
    rows = (common // a.ncols).astype(_INT)
    cols = (common % a.ncols).astype(_INT)
    return mat_from_coo(a.nrows, a.ncols, out_type, rows, cols, vals,
                        presorted=True)


def mat_union(
    a: "MatData | DcsrData",
    b: "MatData | DcsrData",
    op: BinaryOp,
    out_type: Type,
) -> "MatData | DcsrData":
    """C = A + B over the structural union."""
    maybe_inject("kernel.ewise")
    if a.nvals == 0:
        return b.astype(out_type)
    if b.nvals == 0:
        return a.astype(out_type)
    a_keys = pair_keys(a.row_indices(), a.col_indices, a.ncols)
    b_keys = pair_keys(b.row_indices(), b.col_indices, b.ncols)
    union = np.union1d(a_keys, b_keys)
    in_a = np.isin(union, a_keys, assume_unique=True)
    in_b = np.isin(union, b_keys, assume_unique=True)
    both = in_a & in_b
    only_a = in_a & ~both
    only_b = in_b & ~both
    out_vals = out_type.empty(len(union))
    out_vals[only_a] = out_type.coerce_array(
        a.values[np.searchsorted(a_keys, union[only_a])]
    )
    out_vals[only_b] = out_type.coerce_array(
        b.values[np.searchsorted(b_keys, union[only_b])]
    )
    if both.any():
        av = a.values[np.searchsorted(a_keys, union[both])]
        bv = b.values[np.searchsorted(b_keys, union[both])]
        out_vals[both] = _merged_values(op, out_type, av, bv)
    rows = (union // a.ncols).astype(_INT)
    cols = (union % a.ncols).astype(_INT)
    return mat_from_coo(a.nrows, a.ncols, out_type, rows, cols, out_vals,
                        presorted=True)


# eWise merges run over pair keys of the sorted row stream — native on
# both storage tiers.
register("ewise_intersect", "csr", "dcsr")(mat_intersect)
register("ewise_union", "csr", "dcsr")(mat_union)

"""Kernel-level tuning switches (ablation knobs).

DESIGN.md's ablation benches flip these to measure the design choices:

* ``MASK_PUSHDOWN`` — when a (non-complemented) mask is present on mxm,
  push its key set into the SpGEMM kernel so products outside the mask
  are discarded *before* the sort/compress phase.  This is the classic
  masked-SpGEMM optimization (the reason triangle counting writes
  ``C⟨L⟩ = L·Lᵀ`` instead of filtering afterwards).
* ``MULT_SHORTCUTS`` — specialise the expand/multiply phase for
  FIRST/SECOND/ONEB multiply operators, skipping the gather of the
  operand whose values the operator ignores.
* ``ENGINE_FUSION`` — let the lazy engine's fusion planner absorb
  producer chains into single-pass pipelines (off = every deferred node
  runs as a standalone kernel with its own write-back; execution is
  still lazy and topological).

All default on; flip via :func:`set_option` (thread-safe enough for
benchmarks: reads are plain attribute loads).
"""

from __future__ import annotations

MASK_PUSHDOWN: bool = True
MULT_SHORTCUTS: bool = True
ENGINE_FUSION: bool = True

_KNOWN = ("MASK_PUSHDOWN", "MULT_SHORTCUTS", "ENGINE_FUSION")


def set_option(name: str, value: bool) -> bool:
    """Set a tuning switch; returns the previous value."""
    if name not in _KNOWN:
        raise KeyError(f"unknown kernel option {name!r}; known: {_KNOWN}")
    g = globals()
    prev = g[name]
    g[name] = bool(value)
    return prev


def get_option(name: str) -> bool:
    if name not in _KNOWN:
        raise KeyError(f"unknown kernel option {name!r}; known: {_KNOWN}")
    return globals()[name]


class option:
    """Context manager: temporarily set a kernel option."""

    def __init__(self, name: str, value: bool):
        self.name = name
        self.value = value
        self._prev: bool | None = None

    def __enter__(self):
        self._prev = set_option(self.name, self.value)
        return self

    def __exit__(self, *exc):
        set_option(self.name, self._prev)
        return False

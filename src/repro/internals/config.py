"""Kernel-level tuning switches (ablation knobs).

DESIGN.md's ablation benches flip these to measure the design choices:

* ``MASK_PUSHDOWN`` — when a (non-complemented) mask is present on mxm,
  push its key set into the SpGEMM kernel so products outside the mask
  are discarded *before* the sort/compress phase.  This is the classic
  masked-SpGEMM optimization (the reason triangle counting writes
  ``C⟨L⟩ = L·Lᵀ`` instead of filtering afterwards).
* ``MULT_SHORTCUTS`` — specialise the expand/multiply phase for
  FIRST/SECOND/ONEB multiply operators, skipping the gather of the
  operand whose values the operator ignores.
* ``ENGINE_FUSION`` — let the lazy engine's fusion planner absorb
  producer chains into single-pass pipelines (off = every deferred node
  runs as a standalone kernel with its own write-back; execution is
  still lazy and topological).
* ``ENGINE_CSE`` — hash-cons structurally identical pending nodes so a
  repeated subexpression executes its kernel once and every duplicate
  aliases the shared result (planner CSE pass).
* ``ENGINE_PUSHDOWN`` — absorb a masked consumer's mask filter into the
  producing mxm/mxv/vxm/eWiseMult kernel (planner pushdown pass; also
  requires ``MASK_PUSHDOWN`` since it reuses the same kernel-level key
  filter).
* ``ENGINE_MEMO`` — the cross-forcing result cache: a bounded LRU memo
  of (structural key over committed input versions → committed carrier)
  per Context, consulted by the planner's CSE pass so a re-submitted
  expression republishes the cached carrier instead of re-running its
  kernel.  Env-overridable at import time via ``REPRO_RESULT_CACHE``
  (or ``ENGINE_MEMO``) — the CI ablation matrix sets it to ``0``.
* ``MEMO_CAPACITY`` — LRU bound on entries per Context result memo.
* ``ENGINE_COSTMODEL`` — let the planner's cost pass arbitrate the
  pushdown-vs-fusion conflict on shared producers by estimated kernel
  savings (off = the fixed pass order decides: pushdown claims first).
* ``ENGINE_ALGO_MEMO`` — route the pure preprocessing blocks of the
  ``algorithms/`` layer (pattern/normalized adjacency, degree vectors,
  lower triangles, wedge counts) through the per-Context result memo,
  so a repeated pagerank/BFS/triangle call on an unchanged graph wraps
  the cached carriers instead of re-running the setup kernels.
* ``MEMO_EVICTION`` — result-memo eviction policy: ``"cost"`` (default)
  evicts the entry with the lowest recency-aged rebuild-savings
  estimate; ``"lru"`` reproduces the PR-4 recency-only order.
* ``MEMO_ADMISSION`` — cost-model admission gate on *expression* memo
  stores: skip caching a result whose estimated rebuild savings are
  below the measured commit (republish) overhead — caching it would
  cost more than recomputing.  Evidence-gated: nothing is skipped until
  at least one republish has actually been measured.
* ``SERVE_BATCH`` — let the serving layer's batcher coalesce compatible
  queries (same-graph BFS → one multi-source ``msbfs`` submission;
  identical analytics → one shared execution) instead of dispatching
  each query alone.  Env-overridable via ``REPRO_SERVE_BATCH`` for the
  CI ablation matrix.
* ``COST_ADAPTIVE_FUSION`` — let the cost pass veto a fusion whose
  estimated saving is dwarfed by the measured per-chain plan
  bookkeeping (tiny producers run standalone instead).
* ``COST_ADAPTIVE_PARTITIONS`` — pick SpGEMM row-partition counts per
  Context from measured span scaling instead of always using
  ``nthreads`` blocks.

Hypersparse-tier knobs (:mod:`repro.internals.containers`,
:mod:`repro.internals.dispatch`, :mod:`repro.engine.opbatch`):

* ``FORMAT_AUTO`` — let the commit-time format policy pick between the
  CSR carrier and the doubly-compressed hypersparse ``DcsrData``
  carrier by row count vs occupancy (decisions traced as ``cost:``
  instants).  Off pins every matrix to CSR — the pre-hypersparse
  behavior, where row counts past ``MAX_NROWS`` raise the documented
  ``GrB_OUT_OF_MEMORY``.  Env: ``FORMAT_AUTO`` (CI ablation row).
* ``FORMAT_DCSR_MIN_ROWS`` — row count below which the policy never
  picks DCSR (small matrices stay CSR regardless of density: the dense
  row pointer is cheap and the kernels' direct indexing is faster).
* ``FORMAT_DCSR_FACTOR`` — density threshold: a matrix at or above the
  row floor goes DCSR when ``nnz * FACTOR < nrows`` (fewer than one
  stored entry per FACTOR rows).
* ``ENGINE_OP_BATCH`` — let the nonblocking scheduler coalesce many
  pending single-vector products over the *same* committed matrix into
  one blocked multi-vector kernel (the serve-layer batching idea pushed
  down into the engine, so plain library users get it too).  Env:
  ``ENGINE_OP_BATCH`` (CI ablation row).

Streaming-delta knobs (:mod:`repro.internals.stream`,
:mod:`repro.engine.memo` patch tier, :mod:`repro.algorithms.delta`):

* ``ENGINE_DELTA`` — treat batched writes (``Matrix.update_batch`` /
  ``GraphService.ingest_edges``) as *deltas*: memo entries whose kind
  declares a patch rule (degree vectors, pattern matrices, tril, warm
  fixpoints) are updated from the write set instead of dropped, warm
  pagerank/components/triangles restart from the previous
  fixpoint/count, and serving sessions patch their cached tenant views
  in place across generations.  Off reproduces the pre-delta behavior:
  every write invalidates every dependent block and all analytics
  recompute cold.  Env: ``ENGINE_DELTA`` (CI ablation row).
* ``DELTA_PATCH_LIMIT`` — patch-vs-rebuild arbitration threshold: a
  delta is patched only while ``delta_nnz <= max(16, base_nnz *
  DELTA_PATCH_LIMIT)``; past it the cost model declares a rebuild
  cheaper and the entry is dropped (cold fallback).  Decisions traced
  as ``cost:delta-patch`` instants.
* ``INGEST_BATCH`` — edges ``GraphService.ingest_edges`` accumulates
  per graph before an automatic flush (one merged ``apply_edges``, one
  coalesced journal record, one publish).  Explicit ``flush_ingest()``
  / ``checkpoint()`` / ``mutate_graph()`` flush earlier.

Persistent warm-start store knobs (:mod:`repro.store`):

* ``STORE_ENABLE`` — consult (and feed) the on-disk warm-start store:
  committed algo-memo blocks round-trip through content-addressed §VII
  blobs under ``STORE_DIR``, so a *fresh process* — a restarted
  replica, a CLI run, the next CI job — answers its first
  pagerank/BFS/triangles on an unchanged graph with zero setup
  kernels.  Off reproduces the process-local behavior exactly (the CI
  ablation row sets it to ``0``).  Env: ``REPRO_STORE``.
* ``STORE_DIR`` — root directory of the warm-start store; empty (the
  default) means no store is attached unless a directory is passed
  explicitly (``GraphService(store_dir=...)``, ``--store-dir``).
  Entries are written via atomic rename and read via checksum-verified
  §VII deserialize, so concurrent readers and a writer — or CI's
  parallel jobs sharing an actions cache — never observe a torn
  entry; a corrupt entry degrades to a miss (``store:corrupt``
  instant), never an error on the hot path.  Env: ``REPRO_STORE_DIR``.
* ``STORE_MAX_BYTES`` — on-disk budget for store entries; when a write
  pushes the total past it, least-recently-*used* entries (by atime,
  best effort) are evicted under an advisory lock.  Env:
  ``REPRO_STORE_MAX_BYTES`` (or ``STORE_MAX_BYTES``).

Resilience knobs (the fault plane's retry/degradation policy,
:mod:`repro.faults`):

* ``RETRY_MAX`` — retries (after the first attempt) granted to a
  transient execution failure before it surfaces.
* ``RETRY_BASE_DELAY`` — base of the exponential backoff sleep
  (``RETRY_BASE_DELAY * 2**attempt`` seconds).
* ``COMM_TIMEOUT`` — seconds a ``Communicator`` receive/collective
  waits before declaring the peer dead (``GrB_PANIC``).
* ``DEGRADE_WORKER_FAULTS`` — worker faults a Context absorbs before
  degrading its parallel paths to serial execution.

Durability & recovery knobs (:mod:`repro.serve.recovery`,
:mod:`repro.serve.health`):

* ``CHECKPOINT_DIR`` — when non-empty, every ``GraphService`` attaches
  a checkpoint + write-ahead-journal store rooted here; empty (the
  default) means durability is off unless a directory is passed
  explicitly.  Env: ``REPRO_CHECKPOINT_DIR``.
* ``JOURNAL_FSYNC`` — fsync every journal record before acknowledging
  the write (the zero-lost-acknowledged-mutations guarantee extends to
  OS crashes, not just process kills).  Disable for throughput when a
  torn tail on power loss is acceptable — replay already truncates at
  the first corrupt record.  Env: ``REPRO_JOURNAL_FSYNC``.
* ``QUERY_DEADLINE_MS`` — default per-query deadline applied by the
  serving layer when a ``Query`` carries none; ``0`` (default) means
  unbounded.  A query past its deadline stops at the next kernel or
  planner-pass boundary with a transient ``GrB_TIMEOUT``.  Env:
  ``REPRO_QUERY_DEADLINE_MS``.
* ``BREAKER_THRESHOLD`` — consecutive per-tenant query failures (or
  timeouts) that trip that tenant's circuit breaker; ``0`` disables
  breakers.  Env: ``REPRO_BREAKER_THRESHOLD``.
* ``BREAKER_COOLDOWN`` — seconds an open breaker sheds load before
  half-opening to admit one probe query.  Env:
  ``REPRO_BREAKER_COOLDOWN``.

All default on; flip via :func:`set_option` (thread-safe enough for
benchmarks: reads are plain attribute loads).  Values are coerced to
the type of the option's default.
"""

from __future__ import annotations

import os


def _env_flag(names: tuple[str, ...], default: bool) -> bool:
    """Resolve a boolean knob from the first set environment variable."""
    for name in names:
        raw = os.environ.get(name)
        if raw is not None:
            return raw.strip().lower() not in ("0", "false", "no", "off", "")
    return default


def _env_str(name: str, default: str, allowed: tuple[str, ...]) -> str:
    """Resolve a string knob from the environment (unknown → default)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    raw = raw.strip().lower()
    return raw if raw in allowed else default


def _env_num(name: str, default):
    """Resolve a numeric knob from the environment (bad value → default)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return type(default)(raw)
    except ValueError:
        return default


# Every engine knob reads its own environment variable at import so the
# CI ablation matrix (and ad-hoc `ENGINE_CSE=0 pytest` runs) can flip a
# single optimization off without touching code.
MASK_PUSHDOWN: bool = True
MULT_SHORTCUTS: bool = True
ENGINE_FUSION: bool = _env_flag(("ENGINE_FUSION",), True)
ENGINE_CSE: bool = _env_flag(("ENGINE_CSE",), True)
ENGINE_PUSHDOWN: bool = _env_flag(("ENGINE_PUSHDOWN",), True)
ENGINE_MEMO: bool = _env_flag(("REPRO_RESULT_CACHE", "ENGINE_MEMO"), True)
MEMO_CAPACITY: int = 64
MEMO_EVICTION: str = _env_str("MEMO_EVICTION", "cost", ("cost", "lru"))
MEMO_ADMISSION: bool = _env_flag(("MEMO_ADMISSION",), True)
SERVE_BATCH: bool = _env_flag(("REPRO_SERVE_BATCH", "SERVE_BATCH"), True)
ENGINE_COSTMODEL: bool = _env_flag(("ENGINE_COSTMODEL",), True)
ENGINE_ALGO_MEMO: bool = _env_flag(("ENGINE_ALGO_MEMO",), True)
COST_ADAPTIVE_FUSION: bool = _env_flag(("COST_ADAPTIVE_FUSION",), True)
COST_ADAPTIVE_PARTITIONS: bool = _env_flag(("COST_ADAPTIVE_PARTITIONS",), True)
FORMAT_AUTO: bool = _env_flag(("FORMAT_AUTO",), True)
FORMAT_DCSR_MIN_ROWS: int = _env_num("FORMAT_DCSR_MIN_ROWS", 1 << 20)
FORMAT_DCSR_FACTOR: int = _env_num("FORMAT_DCSR_FACTOR", 16)
ENGINE_OP_BATCH: bool = _env_flag(("ENGINE_OP_BATCH",), True)
ENGINE_DELTA: bool = _env_flag(("ENGINE_DELTA",), True)
STORE_ENABLE: bool = _env_flag(("REPRO_STORE",), True)
STORE_DIR: str = os.environ.get("REPRO_STORE_DIR", "")
STORE_MAX_BYTES: int = _env_num(
    "REPRO_STORE_MAX_BYTES", _env_num("STORE_MAX_BYTES", 1 << 28)
)
DELTA_PATCH_LIMIT: float = _env_num("DELTA_PATCH_LIMIT", 0.25)
INGEST_BATCH: int = _env_num("INGEST_BATCH", 1024)
RETRY_MAX: int = 3
RETRY_BASE_DELAY: float = 0.002
COMM_TIMEOUT: float = 10.0
DEGRADE_WORKER_FAULTS: int = 2
CHECKPOINT_DIR: str = os.environ.get("REPRO_CHECKPOINT_DIR", "")
JOURNAL_FSYNC: bool = _env_flag(("REPRO_JOURNAL_FSYNC", "JOURNAL_FSYNC"), True)
QUERY_DEADLINE_MS: float = _env_num("REPRO_QUERY_DEADLINE_MS", 0.0)
BREAKER_THRESHOLD: int = _env_num("REPRO_BREAKER_THRESHOLD", 5)
BREAKER_COOLDOWN: float = _env_num("REPRO_BREAKER_COOLDOWN", 1.0)

_DEFAULTS = {
    "MASK_PUSHDOWN": True,
    "MULT_SHORTCUTS": True,
    "ENGINE_FUSION": ENGINE_FUSION,
    "ENGINE_CSE": ENGINE_CSE,
    "ENGINE_PUSHDOWN": ENGINE_PUSHDOWN,
    "ENGINE_MEMO": ENGINE_MEMO,
    "MEMO_CAPACITY": 64,
    "MEMO_EVICTION": MEMO_EVICTION,
    "MEMO_ADMISSION": MEMO_ADMISSION,
    "SERVE_BATCH": SERVE_BATCH,
    "ENGINE_COSTMODEL": ENGINE_COSTMODEL,
    "ENGINE_ALGO_MEMO": ENGINE_ALGO_MEMO,
    "COST_ADAPTIVE_FUSION": COST_ADAPTIVE_FUSION,
    "COST_ADAPTIVE_PARTITIONS": COST_ADAPTIVE_PARTITIONS,
    "FORMAT_AUTO": FORMAT_AUTO,
    "FORMAT_DCSR_MIN_ROWS": FORMAT_DCSR_MIN_ROWS,
    "FORMAT_DCSR_FACTOR": FORMAT_DCSR_FACTOR,
    "ENGINE_OP_BATCH": ENGINE_OP_BATCH,
    "ENGINE_DELTA": ENGINE_DELTA,
    "STORE_ENABLE": STORE_ENABLE,
    "STORE_DIR": STORE_DIR,
    "STORE_MAX_BYTES": STORE_MAX_BYTES,
    "DELTA_PATCH_LIMIT": DELTA_PATCH_LIMIT,
    "INGEST_BATCH": INGEST_BATCH,
    "RETRY_MAX": 3,
    "RETRY_BASE_DELAY": 0.002,
    "COMM_TIMEOUT": 10.0,
    "DEGRADE_WORKER_FAULTS": 2,
    "CHECKPOINT_DIR": CHECKPOINT_DIR,
    "JOURNAL_FSYNC": JOURNAL_FSYNC,
    "QUERY_DEADLINE_MS": QUERY_DEADLINE_MS,
    "BREAKER_THRESHOLD": BREAKER_THRESHOLD,
    "BREAKER_COOLDOWN": BREAKER_COOLDOWN,
}
_KNOWN = tuple(_DEFAULTS)


def set_option(name: str, value):
    """Set a tuning switch; returns the previous value."""
    if name not in _KNOWN:
        raise KeyError(f"unknown kernel option {name!r}; known: {_KNOWN}")
    g = globals()
    prev = g[name]
    g[name] = type(_DEFAULTS[name])(value)
    return prev


def get_option(name: str):
    if name not in _KNOWN:
        raise KeyError(f"unknown kernel option {name!r}; known: {_KNOWN}")
    return globals()[name]


class option:
    """Context manager: temporarily set a kernel option."""

    def __init__(self, name: str, value):
        self.name = name
        self.value = value
        self._prev = None

    def __enter__(self):
        self._prev = set_option(self.name, self.value)
        return self

    def __exit__(self, *exc):
        set_option(self.name, self._prev)
        return False

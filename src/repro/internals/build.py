"""Kernels for ``build`` — assembling containers from index/value tuples.

Implements the Section IX cleanup: the ``dup`` binary operator is now
*optional*.  With ``dup=None`` (``GrB_NULL``), any duplicated index is an
execution error (:class:`~repro.core.errors.DuplicateIndexError`); with a
``dup`` operator, runs of equal indices are folded left-to-right in the
order the tuples were supplied (matching the spec's sequential
definition) using ``dup(acc, next)``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.binaryop import BinaryOp
from ..core.errors import DuplicateIndexError, IndexOutOfBoundsError
from ..core.types import Type
from ..faults.plane import maybe_inject
from .containers import DcsrData, MatData, VecData, mat_from_coo, pair_keys
from .dispatch import register

__all__ = ["build_vector", "build_matrix", "dedup_sorted"]

_INT = np.int64


def _check_bounds(arr: np.ndarray, limit: int, what: str) -> None:
    if len(arr) == 0:
        return
    if arr.min() < 0 or arr.max() >= limit:
        bad = arr[(arr < 0) | (arr >= limit)][0]
        raise IndexOutOfBoundsError(f"{what} index {int(bad)} out of range [0, {limit})")


def dedup_sorted(
    keys: np.ndarray,
    values: np.ndarray,
    dup: BinaryOp | None,
    out_type: Type,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold duplicate runs in a key-sorted stream.

    ``keys`` must be sorted (stable order preserved within runs so the
    left-to-right fold matches input order).  Returns (unique_keys,
    folded_values).  ``dup=None`` raises on the first duplicate.
    """
    n = len(keys)
    if n == 0:
        return keys, out_type.coerce_array(values)
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(keys[1:], keys[:-1], out=is_start[1:])
    if is_start.all():
        return keys, out_type.coerce_array(values)
    if dup is None:
        first_dup = int(np.flatnonzero(~is_start)[0])
        raise DuplicateIndexError(
            f"duplicate index at sorted position {first_dup} with NULL dup"
        )
    starts = np.flatnonzero(is_start).astype(_INT)
    uniq_keys = keys[starts]
    ufunc = dup.ufunc
    if dup.name.startswith("GrB_FIRST_"):
        # Fold is "keep the first of each run": a pure gather.
        folded = values[starts]
    elif dup.name.startswith("GrB_SECOND_"):
        # "Keep the last of each run": gather at run ends.
        run_ends = np.empty(len(starts), dtype=_INT)
        run_ends[:-1] = starts[1:] - 1
        run_ends[-1] = n - 1
        folded = values[run_ends]
    elif ufunc is not None and values.dtype != object:
        folded = ufunc.reduceat(values, starts)
    else:
        ends = np.empty(len(starts), dtype=_INT)
        ends[:-1] = starts[1:]
        ends[-1] = n
        folded = np.empty(len(starts), dtype=dup.out_type.np_dtype)
        sc = dup.scalar
        for k in range(len(starts)):
            acc = values[starts[k]]
            for idx in range(starts[k] + 1, ends[k]):
                acc = sc(acc, values[idx])
            folded[k] = acc
    return uniq_keys, out_type.coerce_array(folded)


def build_vector(
    size: int,
    t: Type,
    indices: Any,
    values: Any,
    dup: BinaryOp | None,
) -> VecData:
    """``GrB_Vector_build`` kernel."""
    maybe_inject("kernel.build")
    idx = np.asarray(indices, dtype=_INT).reshape(-1)
    vals = np.asarray(values)
    if vals.ndim == 0:
        vals = np.full(len(idx), vals[()])
    vals = t.coerce_array(vals.reshape(-1))
    if len(idx) != len(vals):
        raise IndexOutOfBoundsError(
            f"indices ({len(idx)}) and values ({len(vals)}) length mismatch"
        )
    _check_bounds(idx, size, "vector")
    if len(idx) > 1:
        order = np.argsort(idx, kind="stable")
        idx = idx[order]
        vals = vals[order]
    idx, vals = dedup_sorted(idx, vals, dup, t)
    return VecData(size, t, idx, vals)


def build_matrix(
    nrows: int,
    ncols: int,
    t: Type,
    rows: Any,
    cols: Any,
    values: Any,
    dup: BinaryOp | None,
) -> "MatData | DcsrData":
    """``GrB_Matrix_build`` kernel.

    Output assembly goes through the format policy: hypersparse shapes
    (huge dimension, few tuples) come out doubly-compressed instead of
    paying an O(nrows) pointer."""
    maybe_inject("kernel.build")
    r = np.asarray(rows, dtype=_INT).reshape(-1)
    c = np.asarray(cols, dtype=_INT).reshape(-1)
    vals = np.asarray(values)
    if vals.ndim == 0:
        vals = np.full(len(r), vals[()])
    vals = t.coerce_array(vals.reshape(-1))
    if not (len(r) == len(c) == len(vals)):
        raise IndexOutOfBoundsError("rows/cols/values length mismatch")
    _check_bounds(r, nrows, "row")
    _check_bounds(c, ncols, "column")
    if len(r) > 1:
        order = np.lexsort((c, r))
        r = r[order]
        c = c[order]
        vals = vals[order]
    keys = pair_keys(r, c, ncols)
    uniq_keys, vals = dedup_sorted(keys, vals, dup, t)
    if len(uniq_keys) != len(r):
        keep = np.searchsorted(keys, uniq_keys)  # first position of each run
        # NB: keys sorted; runs contiguous, so searchsorted-left lands on
        # the run start, matching the folded values order.
        r = r[keep]
        c = c[keep]
    return mat_from_coo(nrows, ncols, t, r, c, vals, presorted=True)


# build assembles through the format policy — native on both tiers.
register("build", "csr", "dcsr")(build_matrix)

"""Plain sparse data carriers used by the kernel layer.

The opaque GraphBLAS objects (:class:`~repro.core.matrix.Matrix`,
:class:`~repro.core.vector.Vector`) wrap these carriers.  Kernels consume
and produce carriers and never see GraphBLAS semantics (masks, modes,
sequences) — that separation keeps the kernels testable in isolation and
makes "capturing" an object for deferred execution a cheap reference
copy: by convention, a published carrier's arrays are **never mutated**;
every kernel allocates fresh output arrays.

``MatData`` is canonical CSR with column indices sorted within each row,
which makes the row-major (row, col) stream globally sorted — the
property the merge-based eWise kernels and mask membership tests rely
on.  ``VecData`` stores sorted unique indices plus parallel values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.types import Type

__all__ = [
    "VecData",
    "MatData",
    "coo_to_csr",
    "csr_to_coo_rows",
    "pair_keys",
    "in_sorted",
    "empty_vec",
    "empty_mat",
    "MAX_NROWS",
    "check_nrows_limit",
]

_INT = np.int64

#: Implementation limit on matrix row counts.  The canonical storage is
#: CSR, whose row pointer is dense in ``nrows`` — the representation the
#: GraphBLAS C API was designed around, and the reason real
#: implementations add *hypersparse* formats for 2^60-row matrices.
#: Exceeding the limit raises ``GrB_OUT_OF_MEMORY`` eagerly (an
#: implementation-defined resource limit, which the spec permits)
#: instead of attempting a terabyte allocation.  Column counts and
#: vector sizes are unlimited up to 2^60 (no dense structure in them).
MAX_NROWS = 1 << 27


def check_nrows_limit(nrows: int) -> None:
    """Reject row counts whose CSR row pointer cannot be allocated."""
    if nrows > MAX_NROWS:
        from ..core.errors import OutOfMemoryError

        raise OutOfMemoryError(
            f"nrows={nrows} exceeds this implementation's CSR limit "
            f"({MAX_NROWS}); a hypersparse format would be required "
            "(column counts are unrestricted)"
        )


def _as_index_array(x) -> np.ndarray:
    arr = np.asarray(x, dtype=_INT)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr


@dataclass(frozen=True)
class VecData:
    """Sparse vector: sorted unique ``indices`` with parallel ``values``."""

    size: int
    type: Type
    indices: np.ndarray  # int64[nnz], strictly increasing
    values: np.ndarray   # type.np_dtype[nnz]

    @property
    def nvals(self) -> int:
        return len(self.indices)

    def check(self) -> None:
        """Validate invariants (used by tests and debug paths)."""
        assert self.indices.dtype == _INT
        assert len(self.indices) == len(self.values)
        if len(self.indices):
            assert self.indices[0] >= 0
            assert self.indices[-1] < self.size
            assert np.all(np.diff(self.indices) > 0), "indices not strictly sorted"

    def astype(self, t: Type) -> "VecData":
        if t == self.type:
            return self
        return VecData(self.size, t, self.indices, t.coerce_array(self.values))

    def to_dense(self, fill: Any = None) -> np.ndarray:
        """Densify (testing/debug helper)."""
        out = np.full(
            self.size,
            self.type.default if fill is None else fill,
            dtype=self.type.np_dtype,
        )
        out[self.indices] = self.values
        return out


@dataclass(frozen=True)
class MatData:
    """CSR matrix: ``indptr``/``col_indices``/``values``; cols sorted per row."""

    nrows: int
    ncols: int
    type: Type
    indptr: np.ndarray       # int64[nrows+1]
    col_indices: np.ndarray  # int64[nnz]
    values: np.ndarray       # type.np_dtype[nnz]

    @property
    def nvals(self) -> int:
        return len(self.col_indices)

    def check(self) -> None:
        assert self.indptr.dtype == _INT and self.col_indices.dtype == _INT
        assert len(self.indptr) == self.nrows + 1
        assert self.indptr[0] == 0 and self.indptr[-1] == len(self.col_indices)
        assert len(self.col_indices) == len(self.values)
        assert np.all(np.diff(self.indptr) >= 0)
        if len(self.col_indices):
            assert self.col_indices.min() >= 0
            assert self.col_indices.max() < self.ncols
        nnz = len(self.col_indices)
        if nnz > 1:
            # Strictly increasing within every row, vectorized: the only
            # positions allowed to be non-increasing are row boundaries.
            ok = np.diff(self.col_indices) > 0
            starts = self.indptr[1:-1]
            starts = starts[(starts > 0) & (starts < nnz)]
            ok[starts - 1] = True
            assert bool(ok.all()), "columns not strictly sorted within a row"

    def astype(self, t: Type) -> "MatData":
        if t == self.type:
            return self
        return MatData(
            self.nrows, self.ncols, t,
            self.indptr, self.col_indices, t.coerce_array(self.values),
        )

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def row_indices(self) -> np.ndarray:
        """Expand CSR to the parallel row-index array (COO rows)."""
        return csr_to_coo_rows(self.indptr, self.nrows)

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.col_indices[lo:hi], self.values[lo:hi]

    def transpose(self) -> "MatData":
        """Explicit CSR transpose (counting sort by column)."""
        rows = self.row_indices()
        return coo_to_csr(
            self.ncols, self.nrows, self.type,
            self.col_indices, rows, self.values,
            presorted=False,
        )

    def to_dense(self, fill: Any = None) -> np.ndarray:
        out = np.full(
            (self.nrows, self.ncols),
            self.type.default if fill is None else fill,
            dtype=self.type.np_dtype,
        )
        out[self.row_indices(), self.col_indices] = self.values
        return out


def empty_vec(size: int, t: Type) -> VecData:
    return VecData(size, t, np.empty(0, dtype=_INT), t.empty(0))


def empty_mat(nrows: int, ncols: int, t: Type) -> MatData:
    return MatData(
        nrows, ncols, t,
        np.zeros(nrows + 1, dtype=_INT),
        np.empty(0, dtype=_INT),
        t.empty(0),
    )


def csr_to_coo_rows(indptr: np.ndarray, nrows: int) -> np.ndarray:
    """Row index of every stored element, from the CSR row pointer."""
    return np.repeat(np.arange(nrows, dtype=_INT), np.diff(indptr))


def coo_to_csr(
    nrows: int,
    ncols: int,
    t: Type,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    *,
    presorted: bool = False,
) -> MatData:
    """Assemble CSR from COO triples with **unique** (row, col) pairs.

    ``presorted=True`` asserts the triples are already in row-major
    order (sorted by row, then column) and skips the lexsort.
    """
    rows = _as_index_array(rows)
    cols = _as_index_array(cols)
    if not presorted and len(rows) > 1:
        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        values = values[order]
    indptr = np.zeros(nrows + 1, dtype=_INT)
    if len(rows):
        counts = np.bincount(rows, minlength=nrows)
        np.cumsum(counts, out=indptr[1:])
    return MatData(nrows, ncols, t, indptr, cols, t.coerce_array(values))


def insert_value(arr: np.ndarray, pos: int, value: Any, t: Type) -> np.ndarray:
    """``np.insert`` that is safe for object-dtype (UDT) value arrays.

    ``np.insert`` splats array-like values (a tuple UDT value would be
    inserted element-wise); object arrays need a manual splice.
    """
    if t.is_udt or arr.dtype == object:
        out = np.empty(len(arr) + 1, dtype=object)
        out[:pos] = arr[:pos]
        out[pos] = value
        out[pos + 1:] = arr[pos:]
        return out
    return t.coerce_array(np.insert(arr, pos, value))


def pair_keys(rows: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Encode (row, col) pairs as sortable scalar keys.

    Uses ``row * ncols + col`` in int64 when it cannot overflow;
    otherwise falls back to Python-int object keys (exact, slower — only
    reachable for astronomically-shaped matrices).
    """
    if len(rows) == 0:
        return np.empty(0, dtype=_INT)
    max_row = int(rows.max()) if len(rows) else 0
    if (max_row + 1) * ncols < 2 ** 62:
        return rows * np.int64(ncols) + cols
    return rows.astype(object) * ncols + cols


#: Largest key universe for which membership may allocate a dense
#: boolean lookup table (one byte per slot: 64 MiB).
MAX_MEMBERSHIP_LUT = 1 << 26


def in_sorted(
    keys: np.ndarray, table: np.ndarray, invert: bool = False,
    space: int | None = None,
) -> np.ndarray:
    """Membership of *keys* in the **sorted** array *table*.

    Equivalent to ``np.isin(keys, table, invert=invert)`` but O(n log m)
    via binary search instead of isin's internal sort — the mask key
    sets this is used for (CSR pair keys, vector index arrays) are
    already sorted by construction.

    When the caller knows the key universe (``space``: all keys and
    table entries lie in ``[0, space)``) and the workload is large
    enough to amortize it, membership switches to a dense boolean
    lookup table: one scatter plus one gather, beating binary search's
    ``n log m`` cache-missing probes into a large table.  This is the
    masked-SpGEMM hot path — a BFS visited set easily reaches millions
    of pair keys.
    """
    if len(table) == 0:
        base = np.zeros(len(keys), dtype=bool)
    elif (space is not None and space <= MAX_MEMBERSHIP_LUT
            and (len(keys) + len(table)) * 8 >= space):
        lut = np.zeros(space, dtype=bool)
        lut[table] = True
        base = lut[keys]
    else:
        pos = np.minimum(np.searchsorted(table, keys), len(table) - 1)
        base = table[pos] == keys
    return ~base if invert else base

"""Plain sparse data carriers used by the kernel layer.

The opaque GraphBLAS objects (:class:`~repro.core.matrix.Matrix`,
:class:`~repro.core.vector.Vector`) wrap these carriers.  Kernels consume
and produce carriers and never see GraphBLAS semantics (masks, modes,
sequences) — that separation keeps the kernels testable in isolation and
makes "capturing" an object for deferred execution a cheap reference
copy: by convention, a published carrier's arrays are **never mutated**;
every kernel allocates fresh output arrays.

``MatData`` is canonical CSR with column indices sorted within each row,
which makes the row-major (row, col) stream globally sorted — the
property the merge-based eWise kernels and mask membership tests rely
on.  ``VecData`` stores sorted unique indices plus parallel values.

``DcsrData`` is the *hypersparse* tier: doubly-compressed sparse row
(CombBLAS-style DCSC transposed), storing only the **nonempty** rows
(``row_ids``, strictly increasing) with a row pointer compressed to
``nrr + 1`` entries.  Storage and iteration are O(nnz) — independent of
``nrows`` — which is what makes a 2^32-row graph with a few thousand
edges representable.  Both matrix carriers expose the same polymorphic
surface (``row_indices()``, ``astype``, ``with_values``, ``transpose``,
``nvals``) so kernels written against the sorted COO row stream work on
either; :func:`mat_from_coo` assembles whichever format
:func:`choose_mat_format` picks for the output shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.types import Type
from . import config

__all__ = [
    "VecData",
    "MatData",
    "DcsrData",
    "coo_to_csr",
    "coo_to_dcsr",
    "csr_to_coo_rows",
    "dcsr_from_csr",
    "mat_from_coo",
    "choose_mat_format",
    "mat_format",
    "empty_mat_auto",
    "row_gather",
    "pair_keys",
    "in_sorted",
    "empty_vec",
    "empty_mat",
    "empty_dcsr",
    "MAX_NROWS",
    "check_nrows_limit",
]

_INT = np.int64

#: Implementation limit on matrix row counts.  The canonical storage is
#: CSR, whose row pointer is dense in ``nrows`` — the representation the
#: GraphBLAS C API was designed around, and the reason real
#: implementations add *hypersparse* formats for 2^60-row matrices.
#: Exceeding the limit raises ``GrB_OUT_OF_MEMORY`` eagerly (an
#: implementation-defined resource limit, which the spec permits)
#: instead of attempting a terabyte allocation.  Column counts and
#: vector sizes are unlimited up to 2^60 (no dense structure in them).
MAX_NROWS = 1 << 27


def check_nrows_limit(nrows: int) -> None:
    """Reject row counts whose CSR row pointer cannot be allocated."""
    if nrows > MAX_NROWS:
        from ..core.errors import OutOfMemoryError

        raise OutOfMemoryError(
            f"nrows={nrows} exceeds this implementation's CSR limit "
            f"({MAX_NROWS}); a hypersparse format would be required "
            "(column counts are unrestricted)"
        )


def _as_index_array(x) -> np.ndarray:
    arr = np.asarray(x, dtype=_INT)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr


@dataclass(frozen=True)
class VecData:
    """Sparse vector: sorted unique ``indices`` with parallel ``values``."""

    size: int
    type: Type
    indices: np.ndarray  # int64[nnz], strictly increasing
    values: np.ndarray   # type.np_dtype[nnz]

    @property
    def nvals(self) -> int:
        return len(self.indices)

    def check(self) -> None:
        """Validate invariants (used by tests and debug paths)."""
        assert self.indices.dtype == _INT
        assert len(self.indices) == len(self.values)
        if len(self.indices):
            assert self.indices[0] >= 0
            assert self.indices[-1] < self.size
            assert np.all(np.diff(self.indices) > 0), "indices not strictly sorted"

    def astype(self, t: Type) -> "VecData":
        if t == self.type:
            return self
        return VecData(self.size, t, self.indices, t.coerce_array(self.values))

    def to_dense(self, fill: Any = None) -> np.ndarray:
        """Densify (testing/debug helper)."""
        out = np.full(
            self.size,
            self.type.default if fill is None else fill,
            dtype=self.type.np_dtype,
        )
        out[self.indices] = self.values
        return out


@dataclass(frozen=True)
class MatData:
    """CSR matrix: ``indptr``/``col_indices``/``values``; cols sorted per row."""

    nrows: int
    ncols: int
    type: Type
    indptr: np.ndarray       # int64[nrows+1]
    col_indices: np.ndarray  # int64[nnz]
    values: np.ndarray       # type.np_dtype[nnz]

    @property
    def nvals(self) -> int:
        return len(self.col_indices)

    def check(self) -> None:
        assert self.indptr.dtype == _INT and self.col_indices.dtype == _INT
        assert len(self.indptr) == self.nrows + 1
        assert self.indptr[0] == 0 and self.indptr[-1] == len(self.col_indices)
        assert len(self.col_indices) == len(self.values)
        nnz = len(self.col_indices)
        if nnz == 0:
            # Empty matrix: nothing else to scan.  Skipping the O(nrows)
            # monotonicity diff matters — restore/validate paths check()
            # freshly-created empties of arbitrary dimension.
            return
        assert np.all(np.diff(self.indptr) >= 0)
        assert self.col_indices.min() >= 0
        assert self.col_indices.max() < self.ncols
        if nnz > 1:
            # Strictly increasing within every row, vectorized: the only
            # positions allowed to be non-increasing are row boundaries.
            ok = np.diff(self.col_indices) > 0
            starts = self.indptr[1:-1]
            starts = starts[(starts > 0) & (starts < nnz)]
            ok[starts - 1] = True
            assert bool(ok.all()), "columns not strictly sorted within a row"

    def astype(self, t: Type) -> "MatData":
        if t == self.type:
            return self
        return MatData(
            self.nrows, self.ncols, t,
            self.indptr, self.col_indices, t.coerce_array(self.values),
        )

    def with_values(self, t: Type, values: np.ndarray) -> "MatData":
        """Same structure, new values (value-only apply fast path)."""
        return MatData(
            self.nrows, self.ncols, t,
            self.indptr, self.col_indices, values,
        )

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def row_indices(self) -> np.ndarray:
        """Expand CSR to the parallel row-index array (COO rows)."""
        return csr_to_coo_rows(self.indptr, self.nrows)

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.col_indices[lo:hi], self.values[lo:hi]

    def transpose(self) -> "MatData | DcsrData":
        """Explicit transpose (counting sort by column).  The output
        format follows the *transposed* shape: transposing a wide
        matrix yields a tall one, which may need the hypersparse tier."""
        rows = self.row_indices()
        return mat_from_coo(
            self.ncols, self.nrows, self.type,
            self.col_indices, rows, self.values,
            presorted=False,
        )

    def to_dense(self, fill: Any = None) -> np.ndarray:
        out = np.full(
            (self.nrows, self.ncols),
            self.type.default if fill is None else fill,
            dtype=self.type.np_dtype,
        )
        out[self.row_indices(), self.col_indices] = self.values
        return out


@dataclass(frozen=True)
class DcsrData:
    """Doubly-compressed (hypersparse) matrix: only nonempty rows stored.

    ``row_ids`` lists the nonempty rows (strictly increasing) and
    ``indptr`` is the row pointer *compressed to those rows* (length
    ``nrr + 1``).  Every stored row is nonempty by invariant, so the
    (row, col) stream is globally row-major sorted exactly like CSR —
    all merge/membership kernels written against ``row_indices()`` work
    unchanged.  Total storage is O(nnz): ``nrows`` is just a bound.
    """

    nrows: int
    ncols: int
    type: Type
    row_ids: np.ndarray      # int64[nrr], strictly increasing, all nonempty
    indptr: np.ndarray       # int64[nrr+1], compressed row pointer
    col_indices: np.ndarray  # int64[nnz]
    values: np.ndarray       # type.np_dtype[nnz]

    @property
    def nvals(self) -> int:
        return len(self.col_indices)

    @property
    def nrr(self) -> int:
        """Number of nonempty rows (CombBLAS calls this nzr)."""
        return len(self.row_ids)

    def check(self) -> None:
        assert self.row_ids.dtype == _INT and self.indptr.dtype == _INT
        assert self.col_indices.dtype == _INT
        assert len(self.indptr) == len(self.row_ids) + 1
        assert len(self.col_indices) == len(self.values)
        nnz = len(self.col_indices)
        if nnz == 0:
            assert len(self.row_ids) == 0
            return
        assert self.indptr[0] == 0 and self.indptr[-1] == nnz
        lens = np.diff(self.indptr)
        assert np.all(lens > 0), "empty row listed in row_ids"
        assert self.row_ids[0] >= 0
        assert self.row_ids[-1] < self.nrows
        assert np.all(np.diff(self.row_ids) > 0), "row_ids not strictly sorted"
        assert self.col_indices.min() >= 0
        assert self.col_indices.max() < self.ncols
        if nnz > 1:
            ok = np.diff(self.col_indices) > 0
            starts = self.indptr[1:-1]
            starts = starts[(starts > 0) & (starts < nnz)]
            ok[starts - 1] = True
            assert bool(ok.all()), "columns not strictly sorted within a row"

    def astype(self, t: Type) -> "DcsrData":
        if t == self.type:
            return self
        return DcsrData(
            self.nrows, self.ncols, t, self.row_ids,
            self.indptr, self.col_indices, t.coerce_array(self.values),
        )

    def with_values(self, t: Type, values: np.ndarray) -> "DcsrData":
        """Same structure, new values (value-only apply fast path)."""
        return DcsrData(
            self.nrows, self.ncols, t, self.row_ids,
            self.indptr, self.col_indices, values,
        )

    def row_indices(self) -> np.ndarray:
        """COO row stream — O(nnz), never touches ``nrows``."""
        if len(self.row_ids) == 0:
            return np.empty(0, dtype=_INT)
        return np.repeat(self.row_ids, np.diff(self.indptr))

    def row_window(self, i: int) -> tuple[int, int]:
        """[lo, hi) extent of row ``i`` in the value arrays (empty rows
        yield an empty window)."""
        pos = int(np.searchsorted(self.row_ids, i))
        if pos >= len(self.row_ids) or self.row_ids[pos] != i:
            return 0, 0
        return int(self.indptr[pos]), int(self.indptr[pos + 1])

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = self.row_window(i)
        return self.col_indices[lo:hi], self.values[lo:hi]

    def transpose(self) -> "MatData | DcsrData":
        rows = self.row_indices()
        return mat_from_coo(
            self.ncols, self.nrows, self.type,
            self.col_indices, rows, self.values,
            presorted=False,
        )

    def to_csr(self) -> MatData:
        """Densify the row pointer (the dispatch layer's fallback path).

        Raises the defined resource-limit error when ``nrows`` exceeds
        the CSR limit — a hypersparse matrix past that bound has no CSR
        representation at all.
        """
        check_nrows_limit(self.nrows)
        indptr = np.zeros(self.nrows + 1, dtype=_INT)
        if len(self.row_ids):
            indptr[self.row_ids + 1] = np.diff(self.indptr)
            np.cumsum(indptr, out=indptr)
        return MatData(
            self.nrows, self.ncols, self.type,
            indptr, self.col_indices, self.values,
        )

    def to_dense(self, fill: Any = None) -> np.ndarray:
        out = np.full(
            (self.nrows, self.ncols),
            self.type.default if fill is None else fill,
            dtype=self.type.np_dtype,
        )
        out[self.row_indices(), self.col_indices] = self.values
        return out


def empty_vec(size: int, t: Type) -> VecData:
    return VecData(size, t, np.empty(0, dtype=_INT), t.empty(0))


def empty_mat(nrows: int, ncols: int, t: Type) -> MatData:
    return MatData(
        nrows, ncols, t,
        np.zeros(nrows + 1, dtype=_INT),
        np.empty(0, dtype=_INT),
        t.empty(0),
    )


def empty_dcsr(nrows: int, ncols: int, t: Type) -> DcsrData:
    """O(1) empty hypersparse carrier — any ``nrows`` up to 2^60."""
    return DcsrData(
        nrows, ncols, t,
        np.empty(0, dtype=_INT),
        np.zeros(1, dtype=_INT),
        np.empty(0, dtype=_INT),
        t.empty(0),
    )


def mat_format(d: Any) -> str:
    """``"dcsr"`` | ``"csr"`` — the carrier's storage format tag."""
    return "dcsr" if isinstance(d, DcsrData) else "csr"


def choose_mat_format(nrows: int, nnz: int) -> str:
    """Format policy for a matrix of the given shape/occupancy.

    Pure and deterministic (same inputs + knobs → same format), so a
    journal replay rebuilds byte-identical carriers.  DCSR is chosen
    when CSR physically cannot represent the row count, or when the
    dense row pointer would dominate storage: ``nrows`` at least
    ``FORMAT_DCSR_MIN_ROWS`` *and* fewer than one stored entry per
    ``FORMAT_DCSR_FACTOR`` rows.  ``FORMAT_AUTO=0`` pins everything to
    CSR (the pre-hypersparse behavior; row counts past ``MAX_NROWS``
    then raise the documented resource-limit error downstream).
    """
    if not config.FORMAT_AUTO:
        return "csr"
    if nrows > MAX_NROWS:
        return "dcsr"
    if nrows >= config.FORMAT_DCSR_MIN_ROWS \
            and nnz * config.FORMAT_DCSR_FACTOR < nrows:
        return "dcsr"
    return "csr"


def empty_mat_auto(nrows: int, ncols: int, t: Type) -> "MatData | DcsrData":
    """Format-aware empty carrier (``Matrix.new`` / ``clear``)."""
    if choose_mat_format(nrows, 0) == "dcsr":
        return empty_dcsr(nrows, ncols, t)
    check_nrows_limit(nrows)
    return empty_mat(nrows, ncols, t)


def csr_to_coo_rows(indptr: np.ndarray, nrows: int) -> np.ndarray:
    """Row index of every stored element, from the CSR row pointer."""
    if nrows == 0 or len(indptr) == 0 or indptr[-1] == 0:
        # Empty matrix: skip the O(nrows) repeat/diff entirely.
        return np.empty(0, dtype=_INT)
    return np.repeat(np.arange(nrows, dtype=_INT), np.diff(indptr))


def coo_to_csr(
    nrows: int,
    ncols: int,
    t: Type,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    *,
    presorted: bool = False,
) -> MatData:
    """Assemble CSR from COO triples with **unique** (row, col) pairs.

    ``presorted=True`` asserts the triples are already in row-major
    order (sorted by row, then column) and skips the lexsort.
    """
    rows = _as_index_array(rows)
    cols = _as_index_array(cols)
    if not presorted and len(rows) > 1:
        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        values = values[order]
    if len(rows) == 0:
        return empty_mat(nrows, ncols, t)
    # One uninitialized nrows+1 buffer instead of zeros + a second
    # bincount temporary: cumsum writes every slot past 0 exactly once.
    indptr = np.empty(nrows + 1, dtype=_INT)
    indptr[0] = 0
    np.cumsum(np.bincount(rows, minlength=nrows), out=indptr[1:])
    return MatData(nrows, ncols, t, indptr, cols, t.coerce_array(values))


def coo_to_dcsr(
    nrows: int,
    ncols: int,
    t: Type,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    *,
    presorted: bool = False,
) -> DcsrData:
    """Assemble DCSR from COO triples with **unique** (row, col) pairs.

    O(nnz log nnz) worst case and O(nnz) memory — ``nrows`` is never
    allocated against, which is the whole point of the format.
    """
    rows = _as_index_array(rows)
    cols = _as_index_array(cols)
    if not presorted and len(rows) > 1:
        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        values = values[order]
    if len(rows) == 0:
        return empty_dcsr(nrows, ncols, t)
    row_ids, counts = np.unique(rows, return_counts=True)
    indptr = np.empty(len(row_ids) + 1, dtype=_INT)
    indptr[0] = 0
    np.cumsum(counts, out=indptr[1:])
    return DcsrData(
        nrows, ncols, t, row_ids.astype(_INT, copy=False),
        indptr, cols, t.coerce_array(values),
    )


def dcsr_from_csr(d: MatData) -> DcsrData:
    """Compress a CSR carrier's row pointer (commit-time repack)."""
    lens = np.diff(d.indptr)
    row_ids = np.flatnonzero(lens).astype(_INT, copy=False)
    indptr = np.empty(len(row_ids) + 1, dtype=_INT)
    indptr[0] = 0
    np.cumsum(lens[row_ids], out=indptr[1:])
    return DcsrData(
        d.nrows, d.ncols, d.type, row_ids,
        indptr, d.col_indices, d.values,
    )


def mat_from_coo(
    nrows: int,
    ncols: int,
    t: Type,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    *,
    presorted: bool = False,
) -> "MatData | DcsrData":
    """Assemble whichever matrix format :func:`choose_mat_format` picks.

    This is the kernel layer's output funnel: kernels produce sorted
    COO streams and let the policy decide the carrier, so a hypersparse
    result never materializes an ``nrows + 1`` pointer even transiently.
    """
    if choose_mat_format(nrows, len(rows)) == "dcsr":
        return coo_to_dcsr(
            nrows, ncols, t, rows, cols, values, presorted=presorted
        )
    check_nrows_limit(nrows)
    return coo_to_csr(
        nrows, ncols, t, rows, cols, values, presorted=presorted
    )


def row_gather(d: "MatData | DcsrData", keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-key row extents ``(lo, hi)`` into ``d``'s value arrays.

    ``keys`` are arbitrary (possibly repeated, unsorted) row numbers;
    a missing row yields an empty ``[lo, lo)`` window.  CSR answers by
    direct row-pointer indexing; DCSR by binary search over the
    nonempty-row list — O(len(keys) · log nrr), never O(nrows).
    """
    keys = _as_index_array(keys)
    if isinstance(d, DcsrData):
        nrr = len(d.row_ids)
        if nrr == 0:
            z = np.zeros(len(keys), dtype=_INT)
            return z, z
        pos = np.searchsorted(d.row_ids, keys)
        safe = np.minimum(pos, nrr - 1)
        hit = d.row_ids[safe] == keys
        lo = np.where(hit, d.indptr[safe], 0)
        hi = np.where(hit, d.indptr[safe + 1], 0)
        return lo, hi
    return d.indptr[keys], d.indptr[keys + 1]


def insert_value(arr: np.ndarray, pos: int, value: Any, t: Type) -> np.ndarray:
    """``np.insert`` that is safe for object-dtype (UDT) value arrays.

    ``np.insert`` splats array-like values (a tuple UDT value would be
    inserted element-wise); object arrays need a manual splice.
    """
    if t.is_udt or arr.dtype == object:
        out = np.empty(len(arr) + 1, dtype=object)
        out[:pos] = arr[:pos]
        out[pos] = value
        out[pos + 1:] = arr[pos:]
        return out
    return t.coerce_array(np.insert(arr, pos, value))


def pair_keys(rows: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Encode (row, col) pairs as sortable scalar keys.

    Uses ``row * ncols + col`` in int64 when it cannot overflow;
    otherwise falls back to Python-int object keys (exact, slower — only
    reachable for astronomically-shaped matrices).
    """
    if len(rows) == 0:
        return np.empty(0, dtype=_INT)
    max_row = int(rows.max()) if len(rows) else 0
    if (max_row + 1) * ncols < 2 ** 62:
        return rows * np.int64(ncols) + cols
    return rows.astype(object) * ncols + cols


#: Largest key universe for which membership may allocate a dense
#: boolean lookup table (one byte per slot: 64 MiB).
MAX_MEMBERSHIP_LUT = 1 << 26


def in_sorted(
    keys: np.ndarray, table: np.ndarray, invert: bool = False,
    space: int | None = None,
) -> np.ndarray:
    """Membership of *keys* in the **sorted** array *table*.

    Equivalent to ``np.isin(keys, table, invert=invert)`` but O(n log m)
    via binary search instead of isin's internal sort — the mask key
    sets this is used for (CSR pair keys, vector index arrays) are
    already sorted by construction.

    When the caller knows the key universe (``space``: all keys and
    table entries lie in ``[0, space)``) and the workload is large
    enough to amortize it, membership switches to a dense boolean
    lookup table: one scatter plus one gather, beating binary search's
    ``n log m`` cache-missing probes into a large table.  This is the
    masked-SpGEMM hot path — a BFS visited set easily reaches millions
    of pair keys.
    """
    if len(table) == 0:
        base = np.zeros(len(keys), dtype=bool)
    elif (space is not None and space <= MAX_MEMBERSHIP_LUT
            and (len(keys) + len(table)) * 8 >= space):
        lut = np.zeros(space, dtype=bool)
        lut[table] = True
        base = lut[keys]
    else:
        pos = np.minimum(np.searchsorted(table, keys), len(table) - 1)
        base = table[pos] == keys
    return ~base if invert else base

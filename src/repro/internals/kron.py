"""Kronecker product kernel: C = A ⊗ B under a binary operator.

``C(i·nrowsB + k, j·ncolsB + l) = op(A(i,j), B(k,l))`` for every pair of
stored elements.  The expansion is a repeat/tile product of the two COO
streams — ``nnz(A)·nnz(B)`` output entries, built without Python loops.
"""

from __future__ import annotations

import numpy as np

from ..core.binaryop import BinaryOp
from ..core.types import Type
from ..faults.plane import maybe_inject
from .containers import DcsrData, MatData, empty_mat_auto, mat_from_coo
from .dispatch import register

__all__ = ["kronecker"]

_INT = np.int64


def kronecker(
    a: "MatData | DcsrData", b: "MatData | DcsrData",
    op: BinaryOp, out_type: Type,
) -> "MatData | DcsrData":
    maybe_inject("kernel.kron")
    nrows = a.nrows * b.nrows
    ncols = a.ncols * b.ncols
    if a.nvals == 0 or b.nvals == 0:
        return empty_mat_auto(nrows, ncols, out_type)
    a_rows = a.row_indices()
    b_rows = b.row_indices()
    na, nb = a.nvals, b.nvals
    rows = np.repeat(a_rows * b.nrows, nb) + np.tile(b_rows, na)
    cols = np.repeat(a.col_indices * b.ncols, nb) + np.tile(b.col_indices, na)
    av = op.in1_type.coerce_array(a.values)
    bv = op.in2_type.coerce_array(b.values)
    vals = op.vec(np.repeat(av, nb), np.tile(bv, na))
    # A and B streams are row-major sorted, and the Kron index map is
    # monotone in (A-entry, B-entry) lexicographic order per output row
    # block — but across blocks ordering interleaves, so sort generally.
    # The output dimension is the *product* of the input dimensions, so
    # Kron is where a modest pair of hypersparse operands can exceed the
    # CSR row ceiling — assembling through the policy keeps it O(nnz).
    return mat_from_coo(nrows, ncols, out_type, rows, cols,
                        out_type.coerce_array(vals))


# The repeat/tile expansion reads only COO streams — native both tiers.
register("kron", "csr", "dcsr")(kronecker)

"""Assignment kernels: ``C(I,J) = A``, row/col assign, scalar fill.

These kernels compute the *pre-mask* result Z of an assign: the content
of the output over its full extent, with the (I, J) region updated.  The
operations layer then funnels Z through the standard write-back
(:mod:`.maskaccum`), since ``GrB_assign`` masks span the whole output.

Semantics captured here:

* Without an accumulator the region is **overwritten**: region positions
  with no corresponding stored input element become empty.
* With an accumulator the region is **merged**: existing C entries
  survive, overlaps are folded with the accumulator.
* Index lists may be ``None`` (GrB_ALL) and must not contain duplicates
  (duplicates make assignment order ambiguous → INVALID_INDEX).
* The scalar variants fill *every* position of the region — Table II's
  ``GrB_assign(…, GrB_Scalar, …)`` lands here with an empty scalar
  meaning "delete the region" when unaccumulated.

All variants are format-polymorphic: the region rewrite works on the
COO row stream (``row_indices()``), which both CSR and doubly-
compressed carriers expose in row-major order, and results re-assemble
through :func:`~.containers.mat_from_coo` so the density policy picks
the output format.  Hypersparse graphs therefore survive streaming
writes without the old ``as_csr`` densify fallback; the one inherently
dense case left is a GrB_ALL *scalar fill* (the region is every row),
which raises the documented resource-limit error above the CSR row
ceiling instead of materializing an O(nrows) index range.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.binaryop import BinaryOp
from ..core.errors import InvalidIndexError
from ..core.types import Type
from ..faults.plane import maybe_inject
from .containers import (
    DcsrData,
    MatData,
    VecData,
    check_nrows_limit,
    mat_from_coo,
)
from .dispatch import register
from .ewise import mat_union, vec_union

__all__ = [
    "vec_assign",
    "vec_assign_scalar",
    "mat_assign",
    "mat_assign_scalar",
    "mat_assign_row",
    "mat_assign_col",
]

_INT = np.int64


def _indices_or_all(indices, limit: int, what: str) -> np.ndarray | None:
    if indices is None:
        return None
    idx = np.asarray(indices, dtype=_INT).reshape(-1)
    if len(idx) and (idx.min() < 0 or idx.max() >= limit):
        raise InvalidIndexError(f"{what} index out of range [0, {limit})")
    if len(np.unique(idx)) != len(idx):
        raise InvalidIndexError(f"duplicate {what} indices in assign")
    return idx


def _region_member_vec(indices: np.ndarray, region: np.ndarray | None) -> np.ndarray:
    if region is None:
        return np.ones(len(indices), dtype=bool)
    return np.isin(indices, region)


def vec_assign(
    c: VecData,
    u: VecData,
    indices,
    accum: BinaryOp | None,
    out_type: Type,
) -> VecData:
    """Z for ``w(I) = [accum] u``; len(I) must equal u.size."""
    maybe_inject("kernel.assign")
    idx = _indices_or_all(indices, c.size, "vector")
    region_len = c.size if idx is None else len(idx)
    if u.size != region_len:
        raise InvalidIndexError(
            f"assign source length {u.size} != index-list length {region_len}"
        )
    if idx is None:
        mapped_idx = u.indices
    else:
        mapped_idx = idx[u.indices]
    mapped = VecData(c.size, out_type, *_sorted_pair(mapped_idx, out_type.coerce_array(u.values)))
    if accum is not None:
        return vec_union(c.astype(out_type), mapped, accum, out_type)
    keep = ~_region_member_vec(c.indices, idx)
    outside_idx = c.indices[keep]
    outside_vals = out_type.coerce_array(c.values[keep])
    merged = np.concatenate([outside_idx, mapped.indices])
    merged_vals = np.concatenate([outside_vals, mapped.values])
    order = np.argsort(merged, kind="stable")
    return VecData(c.size, out_type, merged[order], merged_vals[order])


def _sorted_pair(indices: np.ndarray, values: np.ndarray):
    if len(indices) > 1:
        order = np.argsort(indices, kind="stable")
        return indices[order], values[order]
    return indices, values


def vec_assign_scalar(
    c: VecData,
    value: Any | None,
    indices,
    accum: BinaryOp | None,
    out_type: Type,
) -> VecData:
    """Z for ``w(I) = [accum] s`` — fills every region position.

    ``value=None`` (an empty GrB_Scalar) deletes the region when
    unaccumulated and is a no-op when accumulated.
    """
    maybe_inject("kernel.assign")
    idx = _indices_or_all(indices, c.size, "vector")
    region = np.arange(c.size, dtype=_INT) if idx is None else np.sort(idx)
    if value is None:
        if accum is not None:
            return c.astype(out_type)
        keep = ~_region_member_vec(c.indices, region)
        return VecData(c.size, out_type, c.indices[keep],
                       out_type.coerce_array(c.values[keep]))
    fill = np.full(len(region), out_type.coerce_scalar(value),
                   dtype=out_type.np_dtype)
    mapped = VecData(c.size, out_type, region, fill)
    if accum is not None:
        return vec_union(c.astype(out_type), mapped, accum, out_type)
    keep = ~_region_member_vec(c.indices, region)
    merged = np.concatenate([c.indices[keep], region])
    merged_vals = np.concatenate(
        [out_type.coerce_array(c.values[keep]), fill]
    )
    order = np.argsort(merged, kind="stable")
    return VecData(c.size, out_type, merged[order], merged_vals[order])


# ---------------------------------------------------------------------------
# Matrix assigns
# ---------------------------------------------------------------------------

def _mat_region_update(
    c: "MatData | DcsrData",
    new_rows: np.ndarray,
    new_cols: np.ndarray,
    new_vals: np.ndarray,
    row_region: np.ndarray | None,
    col_region: np.ndarray | None,
    accum: BinaryOp | None,
    out_type: Type,
) -> "MatData | DcsrData":
    """Common tail: overwrite-or-merge the region entries into C."""
    mapped = mat_from_coo(
        c.nrows, c.ncols, out_type, new_rows, new_cols, new_vals
    )
    if accum is not None:
        return mat_union(c.astype(out_type), mapped, accum, out_type)
    c_rows = c.row_indices()
    in_rows = (
        np.ones(c.nvals, dtype=bool) if row_region is None
        else np.isin(c_rows, row_region)
    )
    in_cols = (
        np.ones(c.nvals, dtype=bool) if col_region is None
        else np.isin(c.col_indices, col_region)
    )
    keep = ~(in_rows & in_cols)
    rows = np.concatenate([c_rows[keep], new_rows])
    cols = np.concatenate([c.col_indices[keep], new_cols])
    vals = np.concatenate(
        [out_type.coerce_array(c.values[keep]), out_type.coerce_array(new_vals)]
    )
    return mat_from_coo(c.nrows, c.ncols, out_type, rows, cols, vals)


def mat_assign(
    c: "MatData | DcsrData",
    a: "MatData | DcsrData",
    row_indices,
    col_indices,
    accum: BinaryOp | None,
    out_type: Type,
) -> "MatData | DcsrData":
    """Z for ``C(I,J) = [accum] A``."""
    maybe_inject("kernel.assign")
    ridx = _indices_or_all(row_indices, c.nrows, "row")
    cidx = _indices_or_all(col_indices, c.ncols, "column")
    nr = c.nrows if ridx is None else len(ridx)
    nc = c.ncols if cidx is None else len(cidx)
    if (a.nrows, a.ncols) != (nr, nc):
        raise InvalidIndexError(
            f"assign source shape {(a.nrows, a.ncols)} != region shape {(nr, nc)}"
        )
    a_rows = a.row_indices()
    new_rows = a_rows if ridx is None else ridx[a_rows]
    new_cols = a.col_indices if cidx is None else cidx[a.col_indices]
    new_vals = out_type.coerce_array(a.values)
    return _mat_region_update(
        c, new_rows, new_cols, new_vals, ridx, cidx, accum, out_type
    )


def mat_assign_scalar(
    c: "MatData | DcsrData",
    value: Any | None,
    row_indices,
    col_indices,
    accum: BinaryOp | None,
    out_type: Type,
) -> "MatData | DcsrData":
    """Z for ``C(I,J) = [accum] s`` — the region densifies to |I|·|J|."""
    maybe_inject("kernel.assign")
    ridx = _indices_or_all(row_indices, c.nrows, "row")
    cidx = _indices_or_all(col_indices, c.ncols, "column")
    if value is None:
        if accum is not None:
            return c.astype(out_type)
        return _mat_region_update(
            c, np.empty(0, dtype=_INT), np.empty(0, dtype=_INT),
            out_type.empty(0), ridx, cidx, None, out_type,
        )
    # A GrB_ALL scalar fill densifies the region to every row: past the
    # CSR pointer ceiling that is O(nrows) storage no format can carry,
    # so it keeps the documented resource-limit error.
    if ridx is None:
        check_nrows_limit(c.nrows)
    rows_arr = np.arange(c.nrows, dtype=_INT) if ridx is None else ridx
    cols_arr = np.arange(c.ncols, dtype=_INT) if cidx is None else cidx
    grid_rows = np.repeat(rows_arr, len(cols_arr))
    grid_cols = np.tile(cols_arr, len(rows_arr))
    fill = np.full(len(grid_rows), out_type.coerce_scalar(value),
                   dtype=out_type.np_dtype)
    return _mat_region_update(
        c, grid_rows, grid_cols, fill, ridx, cidx, accum, out_type
    )


def mat_assign_row(
    c: "MatData | DcsrData",
    u: VecData,
    row: int,
    col_indices,
    accum: BinaryOp | None,
    out_type: Type,
) -> "MatData | DcsrData":
    """Z for ``C(i, J) = [accum] u`` (``GrB_Row_assign``)."""
    maybe_inject("kernel.assign")
    if not (0 <= row < c.nrows):
        raise InvalidIndexError(f"row {row} out of range [0, {c.nrows})")
    cidx = _indices_or_all(col_indices, c.ncols, "column")
    nc = c.ncols if cidx is None else len(cidx)
    if u.size != nc:
        raise InvalidIndexError(
            f"row-assign source length {u.size} != region width {nc}"
        )
    new_cols = u.indices if cidx is None else cidx[u.indices]
    new_rows = np.full(len(new_cols), row, dtype=_INT)
    return _mat_region_update(
        c, new_rows, new_cols, out_type.coerce_array(u.values),
        np.array([row], dtype=_INT), cidx, accum, out_type,
    )


def mat_assign_col(
    c: "MatData | DcsrData",
    u: VecData,
    row_indices,
    col: int,
    accum: BinaryOp | None,
    out_type: Type,
) -> "MatData | DcsrData":
    """Z for ``C(I, j) = [accum] u`` (``GrB_Col_assign``)."""
    maybe_inject("kernel.assign")
    if not (0 <= col < c.ncols):
        raise InvalidIndexError(f"column {col} out of range [0, {c.ncols})")
    ridx = _indices_or_all(row_indices, c.nrows, "row")
    nr = c.nrows if ridx is None else len(ridx)
    if u.size != nr:
        raise InvalidIndexError(
            f"col-assign source length {u.size} != region height {nr}"
        )
    new_rows = u.indices if ridx is None else ridx[u.indices]
    new_cols = np.full(len(new_rows), col, dtype=_INT)
    return _mat_region_update(
        c, new_rows, new_cols, out_type.coerce_array(u.values),
        ridx, np.array([col], dtype=_INT), accum, out_type,
    )


# Native on both formats: the region rewrite runs on the COO row
# stream, which CSR and DCSR carriers expose identically.
register("assign", "csr", "dcsr")(mat_assign)

"""Format-aware kernel dispatch (the hypersparse tier's switchboard).

Kernels used to assume CSR (``MatData``) everywhere.  With the
doubly-compressed ``DcsrData`` carrier beside it, each kernel family
registers one implementation per storage format it handles natively:

    @register("reduce_rows", "csr", "dcsr")
    def _reduce_rows(a, monoid): ...

``resolve(family, carrier)`` returns the registered implementation for
the carrier's format.  Families without a native hypersparse path run
through :func:`as_csr` instead — a **measured and traced** densify
fallback: the conversion is counted (``format_densify_fallbacks``),
timed, and emitted as a ``format:densify`` trace instant, so a workload
silently paying O(nrows) conversions shows up in ``--trace-out`` and in
the bench gate's counter checks rather than hiding in the wall time.

Most families in this codebase are *polymorphic* over the sorted COO
row stream (``carrier.row_indices()`` + :func:`~.containers.mat_from_coo`)
and register the same callable for both formats; the registry still
records that fact so coverage is auditable (`registered_formats`).
"""

from __future__ import annotations

import time
from typing import Any, Callable

from ..engine.stats import STATS
from .containers import DcsrData, MatData, mat_format

__all__ = ["register", "resolve", "as_csr", "registered_formats", "mat_format"]

#: (family, format) -> kernel implementation
_REGISTRY: dict[tuple[str, str], Callable] = {}


def register(family: str, *formats: str):
    """Class the decorated callable as *family*'s impl for *formats*."""
    def deco(fn: Callable) -> Callable:
        for fmt in formats:
            _REGISTRY[(family, fmt)] = fn
        return fn
    return deco


def resolve(family: str, carrier: Any) -> Callable | None:
    """The registered implementation for the carrier's format, if any."""
    return _REGISTRY.get((family, mat_format(carrier)))


def registered_formats(family: str) -> tuple[str, ...]:
    """Which formats *family* handles natively (docs/tests audit hook)."""
    return tuple(
        fmt for (fam, fmt) in sorted(_REGISTRY) if fam == family
    )


def as_csr(d: "MatData | DcsrData", family: str) -> MatData:
    """Densify a hypersparse carrier for a CSR-only kernel family.

    The escape hatch for families with no native DCSR path (since the
    assign rewrite went polymorphic, every built-in family is native on
    both formats — this remains for third-party/UDK kernels and as the
    audited slow path).  Never silent: bumps ``format_densify_fallbacks``
    and emits a ``format:densify`` trace instant with the family and
    shape, and raises the documented resource-limit error when the row
    count has no CSR representation at all.
    """
    if isinstance(d, MatData):
        return d
    t0 = time.perf_counter()
    out = d.to_csr()
    STATS.bump("format_densify_fallbacks")
    STATS.instant(
        f"format:densify:{family}", "kernel",
        {
            "family": family,
            "nrows": d.nrows,
            "nvals": d.nvals,
            "densify_ms": round((time.perf_counter() - t0) * 1e3, 3),
        },
    )
    return out

"""Extraction kernels: ``w = u(I)``, ``C = A(I,J)``, ``w = A(I,j)``.

GraphBLAS extract permits *duplicate* entries in the index lists (the
output then repeats the corresponding rows/columns).  The kernels handle
that generally: a sorted copy of the index list maps each source
coordinate to *all* of its output positions via a
``searchsorted(left)``/``searchsorted(right)`` window plus a ragged
expansion — no Python loop over indices.

``ALL`` (``GrB_ALL``) is represented by ``None`` index lists.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InvalidIndexError
from ..faults.plane import maybe_inject
from .containers import DcsrData, MatData, VecData, mat_from_coo, row_gather
from .dispatch import register

__all__ = ["vec_extract", "mat_extract", "mat_extract_col"]

_INT = np.int64


def _validate(idx: np.ndarray, limit: int, what: str) -> np.ndarray:
    idx = np.asarray(idx, dtype=_INT).reshape(-1)
    if len(idx) and (idx.min() < 0 or idx.max() >= limit):
        raise InvalidIndexError(f"{what} index out of range [0, {limit})")
    return idx


def _expand_matches(
    src: np.ndarray, targets_sorted: np.ndarray, order: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """For each src coordinate, enumerate all output positions.

    ``targets_sorted`` is the sorted index list, ``order`` its argsort
    (so ``order[k]`` is the output position of ``targets_sorted[k]``).
    Returns (src_entry_index, out_positions, counts_per_src_entry).
    """
    lo = np.searchsorted(targets_sorted, src, side="left")
    hi = np.searchsorted(targets_sorted, src, side="right")
    counts = (hi - lo).astype(_INT)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=_INT), np.empty(0, dtype=_INT), counts
    excl = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(_INT)
    offsets = np.arange(total, dtype=_INT) - np.repeat(excl, counts)
    sorted_pos = np.repeat(lo, counts) + offsets
    out_pos = order[sorted_pos]
    src_entry = np.repeat(np.arange(len(src), dtype=_INT), counts)
    return src_entry, out_pos, counts


def vec_extract(u: VecData, indices: np.ndarray | None) -> VecData:
    """w = u(I); ``indices=None`` means GrB_ALL (a full copy)."""
    maybe_inject("kernel.extract")
    if indices is None:
        return VecData(u.size, u.type, u.indices, u.values)
    idx = _validate(indices, u.size, "vector")
    order = np.argsort(idx, kind="stable")
    idx_sorted = idx[order]
    src_entry, out_pos, _ = _expand_matches(u.indices, idx_sorted, order)
    vals = u.values[src_entry]
    if len(out_pos) > 1:
        o = np.argsort(out_pos, kind="stable")
        out_pos = out_pos[o]
        vals = vals[o]
    return VecData(len(idx), u.type, out_pos, vals)


def mat_extract(
    a: "MatData | DcsrData",
    row_indices: np.ndarray | None,
    col_indices: np.ndarray | None,
) -> "MatData | DcsrData":
    """C = A(I, J) with duplicates allowed in both index lists."""
    maybe_inject("kernel.extract")
    if row_indices is None and col_indices is None:
        # Fresh carrier sharing arrays, whichever tier A lives in.
        return a.with_values(a.type, a.values)

    # Row phase: gather the selected rows (with repetition), driven by
    # the per-format row-window gather (missing DCSR rows gather empty).
    if row_indices is None:
        out_nrows = a.nrows
        rows = a.row_indices()
        cols = a.col_indices
        vals = a.values
    else:
        ridx = _validate(row_indices, a.nrows, "row")
        out_nrows = len(ridx)
        lo, hi = row_gather(a, ridx)
        counts = (hi - lo).astype(_INT)
        total = int(counts.sum())
        if total:
            starts = lo.astype(_INT)
            excl = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(_INT)
            offsets = np.arange(total, dtype=_INT) - np.repeat(excl, counts)
            flat = np.repeat(starts, counts) + offsets
            rows = np.repeat(np.arange(out_nrows, dtype=_INT), counts)
            cols = a.col_indices[flat]
            vals = a.values[flat]
        else:
            rows = np.empty(0, dtype=_INT)
            cols = np.empty(0, dtype=_INT)
            vals = a.type.empty(0)

    # Column phase: remap/filter columns (with repetition).
    if col_indices is None:
        out_ncols = a.ncols
        out_rows, out_cols, out_vals = rows, cols, vals
    else:
        cidx = _validate(col_indices, a.ncols, "column")
        out_ncols = len(cidx)
        order = np.argsort(cidx, kind="stable")
        cidx_sorted = cidx[order]
        src_entry, out_pos, _ = _expand_matches(cols, cidx_sorted, order)
        out_rows = rows[src_entry]
        out_cols = out_pos
        out_vals = vals[src_entry]

    return mat_from_coo(out_nrows, out_ncols, a.type, out_rows, out_cols,
                        out_vals)


def mat_extract_col(
    a: "MatData | DcsrData", col: int, row_indices: np.ndarray | None
) -> VecData:
    """w = A(I, j) — one column as a vector (``Col_extract``)."""
    maybe_inject("kernel.extract")
    if not (0 <= col < a.ncols):
        raise InvalidIndexError(f"column {col} out of range [0, {a.ncols})")
    hit = a.col_indices == col
    rows = a.row_indices()[hit]
    vals = a.values[hit]
    column = VecData(a.nrows, a.type, rows, vals)
    return vec_extract(column, row_indices)


# Extraction is native on both storage tiers: row windows come from the
# polymorphic gather, outputs reassemble through the format policy.
register("extract", "csr", "dcsr")(mat_extract)
register("extract_col", "csr", "dcsr")(mat_extract_col)

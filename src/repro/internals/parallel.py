"""Row-partitioned parallel execution driven by an execution context.

Section IV motivates ``GrB_Context`` with resource management: a context
carries an execution spec (for us: ``nthreads``, ``chunk_rows``), and
operations on objects bound to that context may use those threads.  We
implement the classic row-block decomposition: split the output rows
into contiguous blocks, run the kernel per block on a thread pool, and
concatenate the CSR results (an O(blocks) pointer fix-up).

NumPy releases the GIL inside ufunc loops, so moderate speedups are
real; more importantly this exercises the *scoping* role of contexts —
two sibling contexts with different thread counts run independently.

Worker threads come from the owning context's cached pool
(:meth:`~repro.core.context.Context.worker_pool`): one executor per
context, sized to its effective ``nthreads``, shut down on
``free``/``finalize`` and on degradation to serial.  The old behaviour
— a fresh ``ThreadPoolExecutor`` spun up and torn down per kernel call
— paid thread start-up on *every* parallel mxm; callers without a
context (direct kernel tests) still get an ephemeral pool.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from ..core.errors import ExecutionError
from ..core.semiring import Semiring
from ..engine.stats import STATS
from ..faults.plane import armed, maybe_inject
from ..faults.retry import with_retry
from .containers import MatData, empty_mat
from .mxm import mxm

__all__ = ["row_blocks", "parallel_mxm", "concat_row_blocks"]

_INT = np.int64


def row_blocks(nrows: int, nblocks: int) -> list[tuple[int, int]]:
    """Split ``range(nrows)`` into ≤ nblocks contiguous [lo, hi) blocks."""
    nblocks = max(1, min(nblocks, nrows)) if nrows else 1
    bounds = np.linspace(0, nrows, nblocks + 1, dtype=_INT)
    return [
        (int(bounds[k]), int(bounds[k + 1]))
        for k in range(nblocks)
        if bounds[k + 1] > bounds[k]
    ]


def _slice_rows(a: MatData, lo: int, hi: int) -> MatData:
    """A[lo:hi, :] as a view-backed MatData (no copies of index arrays)."""
    indptr = a.indptr[lo:hi + 1] - a.indptr[lo]
    s, e = a.indptr[lo], a.indptr[hi]
    return MatData(hi - lo, a.ncols, a.type, indptr,
                   a.col_indices[s:e], a.values[s:e])


def concat_row_blocks(blocks: Sequence[MatData], ncols: int) -> MatData:
    """Vertically stack row-block results back into one CSR matrix."""
    if not blocks:
        raise ValueError("no blocks to concatenate")
    # Kernels assemble through the format policy, so a sparse block can
    # come back doubly-compressed; the pointer fix-up below is CSR math.
    blocks = [b if isinstance(b, MatData) else b.to_csr() for b in blocks]
    t = blocks[0].type
    nrows = sum(b.nrows for b in blocks)
    indptr = np.zeros(nrows + 1, dtype=_INT)
    col_parts, val_parts = [], []
    row_off = 0
    nnz_off = 0
    for b in blocks:
        indptr[row_off + 1: row_off + b.nrows + 1] = b.indptr[1:] + nnz_off
        col_parts.append(b.col_indices)
        val_parts.append(b.values)
        row_off += b.nrows
        nnz_off += b.nvals
    cols = np.concatenate(col_parts) if col_parts else np.empty(0, dtype=_INT)
    vals = np.concatenate(val_parts) if val_parts else t.empty(0)
    return MatData(nrows, ncols, t, indptr, cols, t.coerce_array(vals))


def _slice_mask_keys(mask_keys, lo: int, hi: int, ncols: int):
    """Restrict global pair-keys to rows [lo, hi), re-based to row 0."""
    if mask_keys is None:
        return None
    import numpy as _np
    start = _np.searchsorted(mask_keys, lo * ncols)
    end = _np.searchsorted(mask_keys, hi * ncols)
    return mask_keys[start:end] - lo * ncols


def parallel_mxm(
    a: MatData,
    b: MatData,
    semiring: Semiring,
    nthreads: int,
    *,
    chunk_rows: int = 1,
    mask_keys: np.ndarray | None = None,
    mask_complement: bool = False,
    kernel: Callable[..., MatData] = mxm,
    ctx=None,
) -> MatData:
    """C = A ⊕.⊗ B with A's rows partitioned over ``nthreads`` workers.

    ``chunk_rows`` (from the context's exec spec) bounds how finely the
    rows may be split; ``mask_keys`` (sorted global pair-keys) are
    re-based per row block so the masked-SpGEMM push-down composes with
    the parallel split.
    """
    if nthreads <= 1 or a.nrows < 2 or not isinstance(a, MatData):
        # Hypersparse A: the row-block slicer is CSR pointer arithmetic
        # and a doubly-compressed A has too little work per row block to
        # amortize it — run the (DCSR-native) kernel serially.
        return kernel(a, b, semiring, mask_keys, mask_complement)
    # Expected multiply-stream length: the uniform SpGEMM model the
    # cost pass uses, here sizing the split and its throughput samples.
    est_elems = float(a.nvals) * float(b.nvals) / max(1.0, float(a.ncols))
    nblocks = nthreads
    if ctx is not None:
        from ..engine.passes import cost

        nblocks = cost.partition_count(id(ctx), nthreads, est_elems)
    # The context's chunk_rows is the minimum rows worth a worker: never
    # split finer than it (tiny blocks pay more fix-up than they save).
    max_blocks = max(1, a.nrows // max(chunk_rows, 1))
    blocks = row_blocks(a.nrows, min(nblocks, max_blocks))
    if len(blocks) == 1:
        return kernel(a, b, semiring, mask_keys, mask_complement)
    slices = [
        (_slice_rows(a, lo, hi), _slice_mask_keys(mask_keys, lo, hi, b.ncols))
        for lo, hi in blocks
    ]

    def _block(s):
        # Pool threads start unarmed (arming is thread-local); arm this
        # worker explicitly — the ladder below protects it.
        with armed():
            maybe_inject("parallel.worker")
            return kernel(s[0], b, semiring, s[1], mask_complement)

    def _batch():
        if ctx is not None:
            pool = ctx.worker_pool()
            if pool is None:
                # The context was freed while this work was in flight
                # (a deferred forcing or a memo republish racing
                # ``GrB_free``): no pool will ever come back, so punt
                # to the serial ladder below instead of resurrecting
                # an executor the release path can no longer shut down.
                raise RuntimeError("context freed: worker pool finalized")
            return list(pool.map(_block, slices))
        # No owning context (direct kernel tests): ephemeral pool.
        with ThreadPoolExecutor(max_workers=len(blocks)) as pool:
            return list(pool.map(_block, slices))

    t0 = time.perf_counter()
    try:
        # Blocks are pure over immutable carriers, so the whole batch is
        # safely re-runnable: transient faults retry here with backoff.
        results = with_retry(_batch, "parallel.mxm")
    except (ExecutionError, RuntimeError):
        # Persistent (or retry-exhausted) fault in the parallel path —
        # or the context's pool was shut down under us (free/finalize/
        # degradation racing a deferred forcing): degrade to one serial
        # kernel call over the unsplit operands (correct, just slower).
        STATS.bump("degraded_serial")
        return kernel(a, b, semiring, mask_keys, mask_complement)
    if ctx is not None:
        from ..engine.passes import cost

        cost.record_partition_sample(
            id(ctx), len(blocks), est_elems, time.perf_counter() - t0,
        )
    if all(r.nvals == 0 for r in results):
        return empty_mat(a.nrows, b.ncols, semiring.out_type)
    return concat_row_blocks(results, b.ncols)

"""Core GraphBLAS 2.0 objects: types, operators, containers, contexts."""

from . import binaryop, indexunaryop, monoid, semiring, types, unaryop
from .context import (
    Context,
    Mode,
    WaitMode,
    context_switch,
    default_context,
    finalize,
    get_version,
    init,
    is_initialized,
)
from .descriptor import DescField, Descriptor, DescValue
from .errors import (
    ApiError,
    DimensionMismatchError,
    DomainMismatchError,
    DuplicateIndexError,
    EmptyObjectError,
    ExecutionError,
    GraphBLASError,
    IndexOutOfBoundsError,
    InvalidIndexError,
    InvalidObjectError,
    InvalidValueError,
    NoValue,
    NullPointerError,
    OutputNotEmptyError,
    PanicError,
    UninitializedObjectError,
)
from .info import Info
from .matrix import Matrix
from .scalar import Scalar
from .sequence import OpaqueObject, error_string, wait
from .vector import Vector

__all__ = [
    "binaryop", "indexunaryop", "monoid", "semiring", "types", "unaryop",
    "Context", "Mode", "WaitMode", "context_switch", "default_context",
    "finalize", "get_version", "init", "is_initialized",
    "DescField", "Descriptor", "DescValue",
    "Info", "Matrix", "Scalar", "Vector",
    "OpaqueObject", "error_string", "wait",
    "ApiError", "DimensionMismatchError", "DomainMismatchError",
    "DuplicateIndexError", "EmptyObjectError", "ExecutionError",
    "GraphBLASError", "IndexOutOfBoundsError", "InvalidIndexError",
    "InvalidObjectError", "InvalidValueError", "NoValue",
    "NullPointerError", "OutputNotEmptyError", "PanicError",
    "UninitializedObjectError",
]

"""Shared machinery for GraphBLAS operator objects.

The C API exposes *monomorphic* operators (``GrB_PLUS_INT32``) plus a
polymorphic macro layer.  We model both: a :class:`TypedOpFamily` is the
polymorphic name (``PLUS``) and indexing it with a :class:`Type` yields
the monomorphic instance (``PLUS[INT32]`` ≡ ``PLUS_INT32``).

Every typed operator carries two implementations:

* ``scalar`` — the per-element Python callable (what a C function
  pointer is to SuiteSparse).
* ``vec`` — a NumPy-vectorized implementation, present for every
  *predefined* operator.

User-defined operators only have ``scalar``; the kernels then fall back
to a per-element loop (`np.frompyfunc`), which reproduces the
function-pointer-per-scalar penalty the paper's Section II describes —
and which the motivation benchmark measures.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

import numpy as np

from .errors import DomainMismatchError
from .types import Type

__all__ = ["TypedOpFamily", "elementwise_fallback_1", "elementwise_fallback_2"]


class TypedOpFamily:
    """A polymorphic operator name resolving to typed instances.

    Supports ``family[INT32]`` lookup and iteration over available
    domains.  Lookup with an unsupported domain raises
    ``DOMAIN_MISMATCH`` — e.g. ``LNOT[FP64]`` or ``MINV[BOOL]``.
    """

    __slots__ = ("name", "_by_type")

    def __init__(self, name: str, by_type: Mapping[Type, Any]):
        self.name = name
        self._by_type = dict(by_type)

    def __getitem__(self, t: Type) -> Any:
        try:
            return self._by_type[t]
        except KeyError:
            raise DomainMismatchError(
                f"operator {self.name} is not defined on domain {t.name}"
            ) from None

    def __contains__(self, t: Type) -> bool:
        return t in self._by_type

    def get(self, t: Type, default: Any = None) -> Any:
        return self._by_type.get(t, default)

    def domains(self) -> Iterable[Type]:
        return self._by_type.keys()

    def __iter__(self):
        return iter(self._by_type.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TypedOpFamily({self.name}, {len(self._by_type)} domains)"


def elementwise_fallback_1(
    fn: Callable[[Any], Any], out_dtype: np.dtype
) -> Callable[[np.ndarray], np.ndarray]:
    """Wrap a scalar unary callable into an array→array callable.

    This is the slow path used for user-defined operators: one Python
    call per stored element.
    """
    ufn = np.frompyfunc(fn, 1, 1)

    def apply(x: np.ndarray) -> np.ndarray:
        out = ufn(x)
        if out_dtype != object:
            out = out.astype(out_dtype)
        return out

    return apply


def elementwise_fallback_2(
    fn: Callable[[Any, Any], Any], out_dtype: np.dtype
) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Wrap a scalar binary callable into an (array, array)→array callable."""
    ufn = np.frompyfunc(fn, 2, 1)

    def apply(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        out = ufn(x, y)
        if out_dtype != object:
            out = out.astype(out_dtype)
        return out

    return apply

"""GrB_Info return codes with explicitly specified values.

Section IX of the paper ("Cleanup and Miscellany") mandates that
enumerations in the GraphBLAS 2.0 specification carry explicit values so
that programs can link correctly against different conforming libraries.
This module defines ``Info`` (the Python rendering of ``GrB_Info``) with
the values fixed by the 2.0 specification.

Two families exist (Section V, "Error Model"):

* **API errors** — the method call itself was malformed.  They are
  deterministic, never deferred (even in nonblocking mode), and guarantee
  that no program data was modified.
* **Execution errors** — a well-formed call went wrong while executing.
  In nonblocking mode their reporting may be deferred until a forcing
  call such as ``wait(obj, Mode.MATERIALIZE)``.

``SUCCESS`` and ``NO_VALUE`` are not errors: ``NO_VALUE`` is an
informational code (e.g. extracting a non-existent element, or an
implementation declining to provide an export-format hint).
"""

from __future__ import annotations

import enum

__all__ = ["Info", "API_ERRORS", "EXECUTION_ERRORS", "is_api_error", "is_execution_error"]


class Info(enum.IntEnum):
    """``GrB_Info`` — explicitly-valued per the 2.0 cleanup (Section IX)."""

    # -- not errors ------------------------------------------------------
    SUCCESS = 0
    NO_VALUE = 1
    #: Returned by non-default resolutions of ``GrB_wait``-like queries in
    #: some implementations; retained for completeness of the enum table.
    UNINITIALIZED_OBJECT = 2

    # -- API errors ------------------------------------------------------
    NULL_POINTER = 3
    INVALID_VALUE = 4
    INVALID_INDEX = 5
    DOMAIN_MISMATCH = 6
    DIMENSION_MISMATCH = 7
    OUTPUT_NOT_EMPTY = 8
    NOT_IMPLEMENTED = 9
    ALREADY_SET = 10

    # -- execution errors --------------------------------------------------
    PANIC = 101
    OUT_OF_MEMORY = 102
    INSUFFICIENT_SPACE = 103
    INVALID_OBJECT = 104
    INDEX_OUT_OF_BOUNDS = 105
    EMPTY_OBJECT = 106
    #: Implementation extension (serving layer): a query's deadline
    #: expired or the client abandoned it mid-execution.  Modeled on the
    #: §V *transient* execution errors — re-invocation (with a fresh
    #: deadline) may succeed — and deliberately given a value above the
    #: spec-pinned range so future spec codes cannot collide.
    TIMEOUT = 107


#: API errors are never deferred and never modify program data.
API_ERRORS = frozenset(
    {
        Info.UNINITIALIZED_OBJECT,
        Info.NULL_POINTER,
        Info.INVALID_VALUE,
        Info.INVALID_INDEX,
        Info.DOMAIN_MISMATCH,
        Info.DIMENSION_MISMATCH,
        Info.OUTPUT_NOT_EMPTY,
        Info.NOT_IMPLEMENTED,
        Info.ALREADY_SET,
    }
)

#: Execution errors may be deferred in nonblocking mode (Section V).
EXECUTION_ERRORS = frozenset(
    {
        Info.PANIC,
        Info.OUT_OF_MEMORY,
        Info.INSUFFICIENT_SPACE,
        Info.INVALID_OBJECT,
        Info.INDEX_OUT_OF_BOUNDS,
        Info.EMPTY_OBJECT,
        Info.TIMEOUT,
    }
)


def is_api_error(info: Info) -> bool:
    """Return True when *info* denotes an API error (Section V)."""
    return info in API_ERRORS


def is_execution_error(info: Info) -> bool:
    """Return True when *info* denotes an execution error (Section V)."""
    return info in EXECUTION_ERRORS

"""``GrB_Type`` — GraphBLAS domains, predefined and user-defined.

The GraphBLAS specification defines eleven predefined domains (BOOL, the
eight fixed-width integers, FP32 and FP64) and lets applications create
user-defined types (UDTs) of fixed byte size.  We map predefined domains
to NumPy dtypes so that kernels can run vectorized; UDTs map to the NumPy
object dtype and flow through the (slower) generic kernel paths, exactly
like user-defined operators do.

Type objects are opaque handles in the C API; here they are immutable,
hashable instances usable as dictionary keys in the operator registries.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .errors import DomainMismatchError, NullPointerError

__all__ = [
    "Type",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "PREDEFINED_TYPES",
    "INTEGER_TYPES",
    "SIGNED_INTEGER_TYPES",
    "UNSIGNED_INTEGER_TYPES",
    "FLOAT_TYPES",
    "NUMERIC_TYPES",
    "type_from_pyvalue",
    "common_type",
]


class Type:
    """An opaque GraphBLAS domain (``GrB_Type``).

    Parameters
    ----------
    name:
        Spec name, e.g. ``"GrB_INT32"`` for predefined domains.
    np_dtype:
        Backing NumPy dtype. UDTs use ``object``.
    is_udt:
        True for user-defined types (created via :meth:`new`).
    default:
        Zero/identity-like default used when a typed read needs a fill.
    """

    __slots__ = ("name", "np_dtype", "is_udt", "default", "size", "_cast")

    def __init__(
        self,
        name: str,
        np_dtype: Any,
        *,
        is_udt: bool = False,
        default: Any = 0,
        size: int | None = None,
        cast: Callable[[Any], Any] | None = None,
    ):
        self.name = name
        self.np_dtype = np.dtype(np_dtype)
        self.is_udt = is_udt
        self.default = default
        self.size = size if size is not None else self.np_dtype.itemsize
        self._cast = cast

    # -- construction ------------------------------------------------------

    @classmethod
    def new(cls, name: str, size: int | None = None,
            cast: Callable[[Any], Any] | None = None) -> "Type":
        """Create a user-defined type (``GrB_Type_new``).

        ``size`` mirrors the C API's ``sizeof`` argument; it is recorded
        but Python UDT values are arbitrary objects.  ``cast`` optionally
        validates/normalizes scalars entering containers of this type.
        """
        if not name:
            raise NullPointerError("UDT requires a name")
        return cls(name, object, is_udt=True, default=None, size=size, cast=cast)

    # -- behaviour ---------------------------------------------------------

    def coerce_scalar(self, value: Any) -> Any:
        """Cast a Python value into this domain (C-style implicit cast)."""
        if self.is_udt:
            return self._cast(value) if self._cast is not None else value
        if self._cast is not None:
            value = self._cast(value)
        return self.np_dtype.type(value)

    def coerce_array(self, arr: np.ndarray) -> np.ndarray:
        """Cast an array into this domain; returns the input when no-op."""
        if self.is_udt:
            if arr.dtype == object:
                return arr
            return arr.astype(object)
        if arr.dtype == self.np_dtype:
            return arr
        return arr.astype(self.np_dtype)

    def empty(self, n: int) -> np.ndarray:
        """Allocate an uninitialized values array of this domain."""
        return np.empty(n, dtype=self.np_dtype)

    def zeros(self, n: int) -> np.ndarray:
        if self.is_udt:
            out = np.empty(n, dtype=object)
            out[:] = self.default
            return out
        return np.zeros(n, dtype=self.np_dtype)

    @property
    def is_builtin(self) -> bool:
        return not self.is_udt

    @property
    def is_bool(self) -> bool:
        return self.np_dtype == np.bool_

    @property
    def is_integer(self) -> bool:
        return self.np_dtype.kind in "iu"

    @property
    def is_float(self) -> bool:
        return self.np_dtype.kind == "f"

    # -- identity semantics --------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Type({self.name})"

    def __hash__(self) -> int:
        return hash((self.name, self.is_udt))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Type):
            return NotImplemented
        # Predefined types compare by name; UDTs only by identity.
        if self.is_udt or other.is_udt:
            return self is other
        return self.name == other.name


BOOL = Type("GrB_BOOL", np.bool_, default=False)
INT8 = Type("GrB_INT8", np.int8)
INT16 = Type("GrB_INT16", np.int16)
INT32 = Type("GrB_INT32", np.int32)
INT64 = Type("GrB_INT64", np.int64)
UINT8 = Type("GrB_UINT8", np.uint8)
UINT16 = Type("GrB_UINT16", np.uint16)
UINT32 = Type("GrB_UINT32", np.uint32)
UINT64 = Type("GrB_UINT64", np.uint64)
FP32 = Type("GrB_FP32", np.float32, default=0.0)
FP64 = Type("GrB_FP64", np.float64, default=0.0)

PREDEFINED_TYPES: tuple[Type, ...] = (
    BOOL, INT8, INT16, INT32, INT64, UINT8, UINT16, UINT32, UINT64, FP32, FP64,
)

SIGNED_INTEGER_TYPES: tuple[Type, ...] = (INT8, INT16, INT32, INT64)
UNSIGNED_INTEGER_TYPES: tuple[Type, ...] = (UINT8, UINT16, UINT32, UINT64)
INTEGER_TYPES: tuple[Type, ...] = SIGNED_INTEGER_TYPES + UNSIGNED_INTEGER_TYPES
FLOAT_TYPES: tuple[Type, ...] = (FP32, FP64)
NUMERIC_TYPES: tuple[Type, ...] = INTEGER_TYPES + FLOAT_TYPES

_BY_DTYPE = {t.np_dtype: t for t in PREDEFINED_TYPES}
_BY_NAME = {t.name: t for t in PREDEFINED_TYPES}
# short aliases used by the typed-suffix registries ("INT32" etc.)
_SUFFIX = {
    BOOL: "BOOL", INT8: "INT8", INT16: "INT16", INT32: "INT32",
    INT64: "INT64", UINT8: "UINT8", UINT16: "UINT16", UINT32: "UINT32",
    UINT64: "UINT64", FP32: "FP32", FP64: "FP64",
}


def suffix_of(t: Type) -> str:
    """Spec suffix for a predefined type (e.g. ``INT32``)."""
    try:
        return _SUFFIX[t]
    except KeyError:
        raise DomainMismatchError(f"{t!r} has no predefined suffix") from None


def from_dtype(dtype: Any) -> Type:
    """Map a NumPy dtype to the predefined GraphBLAS domain."""
    dt = np.dtype(dtype)
    try:
        return _BY_DTYPE[dt]
    except KeyError:
        raise DomainMismatchError(f"no GraphBLAS domain for dtype {dt}") from None


def from_name(name: str) -> Type:
    """Look up a predefined domain by spec name (``"GrB_FP64"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DomainMismatchError(f"unknown type name {name!r}") from None


def type_from_pyvalue(value: Any) -> Type:
    """Infer a GraphBLAS domain for a bare Python/NumPy scalar."""
    if isinstance(value, (bool, np.bool_)):
        return BOOL
    if isinstance(value, np.generic):
        return from_dtype(value.dtype)
    if isinstance(value, int):
        return INT64
    if isinstance(value, float):
        return FP64
    raise DomainMismatchError(f"cannot infer GraphBLAS domain for {type(value)!r}")


def common_type(a: Type, b: Type) -> Type:
    """C-style implicit promotion between two domains.

    UDTs never promote: both sides must be the same UDT, otherwise the
    operation is a DOMAIN_MISMATCH API error, matching the spec rule that
    no casting is defined to or from user-defined types.
    """
    if a.is_udt or b.is_udt:
        if a is b:
            return a
        raise DomainMismatchError(f"no implicit cast between {a.name} and {b.name}")
    if a == b:
        return a
    return from_dtype(np.promote_types(a.np_dtype, b.np_dtype))


def cast_allowed(src: Type, dst: Type) -> bool:
    """Whether the spec's implicit cast from *src* to *dst* exists."""
    if src.is_udt or dst.is_udt:
        return src is dst
    return True

"""Execution contexts (§IV, Figure 2).

GraphBLAS 1.X had a single program-wide context established by
``GrB_init``.  GraphBLAS 2.0 generalizes this into a *hierarchy* of
``GrB_Context`` objects so that multithreaded (and, in the future,
distributed) executions can scope resources:

* :func:`init` creates the **top-level context** (unchanged from 1.X).
* :meth:`Context.new` nests a context inside a parent (``parent=None``
  means the top-level context), with its own mode and an
  *implementation-defined* execution spec.  Ours is a
  :class:`ResourceSpec` — a validated mapping with keys:

  - ``nthreads`` — worker threads for row-partitioned kernels,
  - ``chunk_rows`` — minimum rows per worker block,
  - ``memo_capacity`` — entry bound for this context's result memo
    (a tenant's cache quota in the serving layer),
  - ``fault_domain`` — label matched by targeted fault injection
    (``FaultSpec(where={"domain": ...})``) so chaos in one tenant
    cannot leak into a sibling.

* Vectors and matrices are created *in* a context (an optional
  constructor argument, §IV) and all objects participating in one
  method call must share a context — enforced as DOMAIN_MISMATCH.
* :func:`context_switch` re-homes an object (``GrB_Context_switch``).
* ``free()`` releases a context (it then behaves uninitialized);
  :func:`finalize` frees every context and tears down the library.

The class is split along the line the serving layer needs: the
**resource spec** (immutable :class:`ResourceSpec`, shared vocabulary
between §IV and admission control) versus the **per-session state**
(degradation, worker-fault count, result memo, kernel pool, local
stats), which is mutable and guarded by a per-instance lock so
concurrent sessions on sibling contexts never contend on — or corrupt —
each other's bookkeeping.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Mapping

from .errors import (
    InvalidValueError,
    PanicError,
    UninitializedObjectError,
)

__all__ = [
    "Mode",
    "WaitMode",
    "Context",
    "ResourceSpec",
    "init",
    "finalize",
    "is_initialized",
    "default_context",
    "context_switch",
    "get_version",
]


class Mode(enum.IntEnum):
    """``GrB_Mode`` with explicit values."""

    NONBLOCKING = 0
    BLOCKING = 1


class WaitMode(enum.IntEnum):
    """``GrB_WaitMode`` (§III completion / §V materialization)."""

    COMPLETE = 0
    MATERIALIZE = 1


_state_lock = threading.Lock()
_top_context: "Context | None" = None
_all_contexts: "list[Context]" = []


class ResourceSpec:
    """The immutable resource half of a context (§IV execution spec).

    Validated once at construction; contexts resolve unset keys through
    their ancestor chain (:meth:`Context.effective`), so a spec only
    names what this level *overrides*.
    """

    __slots__ = ("_values",)

    #: Every key an execution spec may set.
    KEYS = ("nthreads", "chunk_rows", "memo_capacity", "fault_domain")

    def __init__(self, spec: "Mapping[str, Any] | ResourceSpec | None" = None):
        if isinstance(spec, ResourceSpec):
            values = dict(spec._values)
        else:
            values = dict(spec or {})
        for key in ("nthreads", "chunk_rows", "memo_capacity"):
            val = values.get(key)
            if val is not None and (not isinstance(val, int) or val < 1):
                raise InvalidValueError(
                    f"{key} must be a positive int, got {val!r}"
                )
        domain = values.get("fault_domain")
        if domain is not None and (
                not isinstance(domain, str) or not domain):
            raise InvalidValueError(
                f"fault_domain must be a non-empty string, got {domain!r}"
            )
        unknown = set(values) - set(self.KEYS)
        if unknown:
            raise InvalidValueError(
                f"unknown execution-spec keys: {sorted(unknown)}"
            )
        self._values = values

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def as_dict(self) -> dict[str, Any]:
        return dict(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResourceSpec):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResourceSpec({self._values})"


class Context:
    """An opaque execution context (``GrB_Context``)."""

    __slots__ = (
        "mode", "parent", "_spec", "_freed", "_children", "name",
        "_lock", "_degraded", "_worker_faults",
        "_result_memo", "_pool", "_pool_nthreads", "_local_stats",
    )

    def __init__(
        self,
        mode: Mode,
        parent: "Context | None",
        exec_spec: "Mapping[str, Any] | ResourceSpec | None",
        name: str = "",
    ):
        self.mode = Mode(mode)
        self.parent = parent
        self._spec = ResourceSpec(exec_spec)
        self._freed = False
        self._children: list[Context] = []
        self.name = name
        #: Guards the mutable per-session state below.  An RLock so the
        #: degradation path may consult config while holding it.
        self._lock = threading.RLock()
        self._degraded = False
        self._worker_faults = 0
        self._result_memo = None  # lazy ResultMemo (nonblocking planner)
        self._pool = None         # lazy ThreadPoolExecutor (parallel mxm)
        self._pool_nthreads = 0
        self._local_stats = None  # lazy ContextStats (tenant rollup)
        if parent is not None:
            parent._children.append(self)

    # -- GrB_Context_new ---------------------------------------------------

    @classmethod
    def new(
        cls,
        mode: Mode,
        parent: "Context | None" = None,
        exec_spec: "Mapping[str, Any] | ResourceSpec | None" = None,
        name: str = "",
    ) -> "Context":
        """``GrB_Context_new(ctx, mode, parent, exec)`` (Fig. 2).

        ``parent=None`` plays the role of ``GrB_NULL``: the new context
        nests under the top-level context, which must exist.
        """
        with _state_lock:
            if _top_context is None:
                raise PanicError("GrB_Context_new before GrB_init")
            actual_parent = parent if parent is not None else _top_context
        if actual_parent._freed:
            raise UninitializedObjectError("parent context has been freed")
        ctx = cls(mode, actual_parent, exec_spec, name)
        with _state_lock:
            _all_contexts.append(ctx)
        return ctx

    # -- resource resolution ------------------------------------------------

    def check_valid(self) -> None:
        if self._freed:
            raise UninitializedObjectError("context has been freed")

    @property
    def is_freed(self) -> bool:
        return self._freed

    @property
    def spec(self) -> ResourceSpec:
        """This context's own (immutable) resource spec."""
        return self._spec

    def exec_spec(self) -> dict[str, Any]:
        """A copy of this context's own execution spec."""
        return self._spec.as_dict()

    def effective(self, key: str, default: Any) -> Any:
        """Resolve a spec key through the ancestor chain."""
        ctx: Context | None = self
        while ctx is not None:
            if key in ctx._spec:
                return ctx._spec[key]
            ctx = ctx.parent
        return default

    @property
    def nthreads(self) -> int:
        return int(self.effective("nthreads", 1))

    @property
    def chunk_rows(self) -> int:
        return int(self.effective("chunk_rows", 1))

    @property
    def memo_capacity(self) -> int | None:
        """Result-memo entry bound, or ``None`` for the global default."""
        cap = self.effective("memo_capacity", None)
        return None if cap is None else int(cap)

    @property
    def fault_domain(self) -> str | None:
        """The fault-injection domain label, or ``None`` if unscoped."""
        return self.effective("fault_domain", None)

    @property
    def depth(self) -> int:
        """Nesting depth (top-level = 0)."""
        d, ctx = 0, self.parent
        while ctx is not None:
            d += 1
            ctx = ctx.parent
        return d

    def is_ancestor_of(self, other: "Context") -> bool:
        ctx: Context | None = other
        while ctx is not None:
            if ctx is self:
                return True
            ctx = ctx.parent
        return False

    # -- scoped engine resources ----------------------------------------------

    def result_memo(self, create: bool = True):
        """This context's cross-forcing result memo (lazily created).

        Scoping the memo to the context is what makes "never serve
        across mode or context boundaries" structural: a lookup made
        while planning an object's forcing can only see entries stored
        by sequences in the very same context.  The spec's
        ``memo_capacity`` (resolved through the ancestor chain) bounds
        it — a serving tenant's cache quota.
        """
        with self._lock:
            if self._result_memo is None and create and not self._freed:
                from ..engine.memo import ResultMemo

                self._result_memo = ResultMemo(capacity=self.memo_capacity)
            return self._result_memo

    def local_stats(self, create: bool = True):
        """This context's tenant-local stats rollup (lazily created).

        The scheduler attributes kernel time and reuse/fault events to
        the context owning each forced node; the serving layer reads
        the rollup back per tenant (``engine_stats()["tenant"]``).
        """
        with self._lock:
            if self._local_stats is None and create and not self._freed:
                from ..engine.stats import ContextStats

                self._local_stats = ContextStats()
            return self._local_stats

    def worker_pool(self):
        """The context's cached kernel thread pool, sized ``nthreads``.

        Replaces the fresh ``ThreadPoolExecutor`` the parallel kernels
        used to spin up per call: one pool per context, rebuilt only
        when the effective thread count changes, shut down on
        ``free``/``finalize``/degradation.

        Returns ``None`` once the context is freed: a deferred forcing
        (or a memo republish) that outlives ``free`` must not resurrect
        an executor nothing will ever shut down — callers fall back to
        serial execution instead.
        """
        from concurrent.futures import ThreadPoolExecutor

        nthreads = max(1, self.nthreads)
        with self._lock:
            if self._freed:
                return None
            pool = self._pool
            if (pool is None or self._pool_nthreads != nthreads
                    or getattr(pool, "_shutdown", False)):
                if pool is not None and not getattr(pool, "_shutdown", False):
                    pool.shutdown(wait=False)
                name = self.name or f"ctx{id(self) & 0xFFFF:x}"
                pool = ThreadPoolExecutor(
                    max_workers=nthreads,
                    thread_name_prefix=f"grb-{name}",
                )
                self._pool = pool
                self._pool_nthreads = nthreads
            return pool

    def _release_resources(self) -> None:
        """Drop memo entries and stop the worker pool (free/finalize)."""
        with self._lock:
            memo, self._result_memo = self._result_memo, None
            pool, self._pool = self._pool, None
            self._pool_nthreads = 0
        if memo is not None:
            memo.clear()
        if pool is not None:
            pool.shutdown(wait=False)

    # -- graceful degradation (fault plane) -----------------------------------

    @property
    def is_degraded(self) -> bool:
        """True once this context's parallel paths have been demoted to
        serial execution after repeated worker faults."""
        return self._degraded

    def record_worker_fault(self) -> bool:
        """Count one absorbed worker fault against this context.

        Returns True exactly once — when the count crosses the
        ``DEGRADE_WORKER_FAULTS`` threshold and the context flips to
        degraded (serial) execution.  Strictly per-context: a sibling
        tenant's count and pool are untouched.
        """
        from ..internals import config

        with self._lock:
            self._worker_faults += 1
            degraded_now = (
                not self._degraded
                and self._worker_faults
                >= config.get_option("DEGRADE_WORKER_FAULTS")
            )
            if degraded_now:
                self._degraded = True
            pool = None
            if degraded_now:
                # Serial execution from here on: stop the cached kernel
                # pool (workers may be wedged — don't wait on them).
                pool, self._pool = self._pool, None
                self._pool_nthreads = 0
        stats = self._local_stats
        if stats is not None:
            stats.bump("worker_faults")
        if pool is not None:
            pool.shutdown(wait=False)
        return degraded_now

    def restore(self) -> None:
        """Clear degraded state (operator action after the fault cleared)."""
        with self._lock:
            self._degraded = False
            self._worker_faults = 0

    # -- engine introspection -------------------------------------------------

    def engine_stats(self, include_spans: bool = False) -> dict[str, Any]:
        """Snapshot of the lazy-engine counters and per-kernel timings.

        The engine keeps process-wide statistics (nodes built/forced,
        fusions, CSE hits/reuses, pushed masks, deferred completes, ...);
        contexts expose them so tools need not import the engine package
        directly.  Fault plane counters ride along under ``fault_sites``
        (with the planner-pass subset repeated under ``planner_faults``),
        and ``include_spans=True`` adds the Chrome-trace event list under
        ``trace_events`` (what the CLI's ``--trace-out`` writes).

        The ``tenant`` key carries this context's *local* rollup —
        kernels, kernel wall time, reuse events, worker faults, serving
        counters — attributed by the scheduler to the context owning
        each forced node.  Process-wide counters answer "did the
        optimizer do anything?"; the tenant rollup answers "who
        consumed it?".
        """
        from ..engine.stats import STATS
        from ..faults.plane import PLANE

        snap = STATS.snapshot()
        plane_snap = PLANE.snapshot()
        injected = plane_snap["injected"]
        snap["fault_sites"] = injected
        snap["planner_faults"] = {
            site: n for site, n in injected.items()
            if site.startswith("planner.")
        }
        snap["fault_domains"] = plane_snap.get("by_domain", {})
        with self._lock:
            memo = self._result_memo
            stats = self._local_stats
            snap["context_degraded"] = self._degraded
        snap["memo_entries"] = 0 if memo is None else len(memo)
        snap["memo_capacity"] = (
            0 if memo is None else memo.capacity
        )
        snap["fault_domain"] = self.fault_domain
        snap["tenant"] = {} if stats is None else stats.snapshot()
        if include_spans:
            snap["trace_events"] = STATS.trace_events()
        return snap

    # -- teardown ------------------------------------------------------------

    def free(self) -> None:
        """``GrB_free`` on a context: it then behaves uninitialized (§IV).

        Scoped resources die with the context: the result memo's cached
        carriers are dropped and the kernel thread pool is stopped.
        """
        self._freed = True
        self._release_resources()
        for child in self._children:
            child.free()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or f"depth={self.depth}"
        state = "freed" if self._freed else self.mode.name
        return f"Context({label}, {state}, exec={self._spec.as_dict()})"


def init(mode: Mode = Mode.NONBLOCKING) -> Context:
    """``GrB_init`` — create the top-level context.

    Calling it twice without an intervening :func:`finalize` is an
    error (PANIC per spec: behaviour of double-init is undefined and we
    choose to fail loudly).
    """
    global _top_context
    with _state_lock:
        if _top_context is not None:
            raise PanicError("GrB_init called twice")
        _top_context = Context(Mode(mode), None, None, name="top-level")
        _all_contexts.append(_top_context)
        return _top_context


def finalize() -> None:
    """``GrB_finalize`` — frees all ``GrB_Context`` objects (§IV)."""
    global _top_context
    with _state_lock:
        if _top_context is None:
            raise PanicError("GrB_finalize without GrB_init")
        released = list(_all_contexts)
        for ctx in released:
            ctx._freed = True
        _all_contexts.clear()
        _top_context = None
    for ctx in released:
        ctx._release_resources()


def is_initialized() -> bool:
    with _state_lock:
        return _top_context is not None


def default_context() -> Context:
    """The top-level context; PANIC if the library is uninitialized."""
    with _state_lock:
        if _top_context is None:
            raise PanicError("GraphBLAS method called before GrB_init")
        return _top_context


def context_switch(obj: Any, new_ctx: Context) -> None:
    """``GrB_Context_switch(<GrB Object>, newCtx)`` (Fig. 2).

    Re-homes a vector or matrix into another context.  O(1): data does
    not move on a shared-memory node; the binding changes.
    """
    new_ctx.check_valid()
    obj._switch_context(new_ctx)


def get_version() -> tuple[int, int]:
    """``GrB_getVersion`` — (major, minor) of the implemented spec."""
    return (2, 0)

"""``GrB_Monoid`` — an associative, commutative binary op with identity.

Monoids drive reductions and the "add" of semirings.  Predefined monoids
carry the NumPy ufunc of their operator so that segment reductions run as
a single ``ufunc.reduceat`` call (the compress step of the ESC SpGEMM
kernel).  User-defined monoids reduce with a per-segment Python loop.

Predefined (per spec): ``PLUS/TIMES/MIN/MAX`` over the ten numeric
domains and ``LOR/LAND/LXOR/LXNOR`` over BOOL.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from . import binaryop as _b
from . import types as _t
from .binaryop import BinaryOp
from .errors import DomainMismatchError, NullPointerError
from .opbase import TypedOpFamily
from .types import Type

__all__ = [
    "Monoid",
    "PLUS_MONOID", "TIMES_MONOID", "MIN_MONOID", "MAX_MONOID",
    "LOR_MONOID", "LAND_MONOID", "LXOR_MONOID", "LXNOR_MONOID",
    "PREDEFINED_MONOIDS",
]


class Monoid:
    """A monomorphic monoid ⟨op, identity⟩ (optionally with a terminal).

    The *terminal* (annihilator) is an optimization hint: once a partial
    reduction reaches it, the remaining elements cannot change the
    result.  Predefined MIN/MAX/LOR/LAND monoids carry one.
    """

    __slots__ = ("name", "op", "identity", "terminal", "is_builtin")

    def __init__(
        self,
        name: str,
        op: BinaryOp,
        identity: Any,
        terminal: Any = None,
        *,
        is_builtin: bool = False,
    ):
        if not (op.in1_type == op.in2_type == op.out_type):
            raise DomainMismatchError(
                f"monoid operator must be T x T -> T, got {op!r}"
            )
        self.name = name
        self.op = op
        self.identity = op.out_type.coerce_scalar(identity)
        self.terminal = (
            op.out_type.coerce_scalar(terminal) if terminal is not None else None
        )
        self.is_builtin = is_builtin

    @classmethod
    def new(cls, op: BinaryOp, identity: Any, name: str = "") -> "Monoid":
        """``GrB_Monoid_new`` — also accepts a ``Scalar`` identity
        (the Table II scalar variant); an *empty* scalar is a
        DOMAIN_MISMATCH because a monoid requires an identity value."""
        if op is None:
            raise NullPointerError("monoid operator is NULL")
        # Accept the GrB_Scalar variant without importing Scalar (cycle).
        extract = getattr(identity, "_monoid_identity_value", None)
        if extract is not None:
            identity = extract()
        return cls(name or f"monoid<{op.name}>", op, identity)

    @property
    def type(self) -> Type:
        return self.op.out_type

    # -- reduction kernels -------------------------------------------------

    def reduce_array(self, values: np.ndarray) -> Any:
        """Reduce a 1-D values array to one scalar (identity if empty)."""
        if len(values) == 0:
            return self.identity
        uf = self.op.ufunc
        if uf is not None and values.dtype != object:
            return self.type.coerce_scalar(uf.reduce(values))
        acc = values[0]
        sc = self.op.scalar
        for v in values[1:]:
            acc = sc(acc, v)
            if self.terminal is not None and acc == self.terminal:
                break
        return self.type.coerce_scalar(acc)

    def reduceat(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Segment-reduce: segment k is ``values[starts[k]:starts[k+1]]``.

        ``starts`` excludes the trailing sentinel; all segments must be
        non-empty (guaranteed by the callers, which derive segment
        boundaries from runs of equal keys).
        """
        if len(starts) == 0:
            return self.type.empty(0)
        uf = self.op.ufunc
        if uf is not None and values.dtype != object:
            out = uf.reduceat(values, starts)
            return self.type.coerce_array(out)
        ends = np.empty(len(starts), dtype=np.int64)
        ends[:-1] = starts[1:]
        ends[-1] = len(values)
        out = np.empty(len(starts), dtype=self.type.np_dtype)
        sc = self.op.scalar
        for k in range(len(starts)):
            acc = values[starts[k]]
            for idx in range(starts[k] + 1, ends[k]):
                acc = sc(acc, values[idx])
            out[k] = acc
        return out

    def combine(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Pairwise-combine two aligned value arrays."""
        return self.op.vec(x, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Monoid({self.name}, identity={self.identity!r})"


def _monoid_family(
    name: str,
    family: TypedOpFamily,
    domains: tuple[Type, ...],
    identity_of,
    terminal_of=lambda t: None,
) -> TypedOpFamily:
    by_type = {}
    for t in domains:
        m = Monoid(
            f"GrB_{name}_MONOID_{_t.suffix_of(t)}",
            family[t],
            identity_of(t),
            terminal_of(t),
            is_builtin=True,
        )
        by_type[t] = m
        globals()[f"{name}_MONOID_{_t.suffix_of(t)}"] = m
        __all__.append(f"{name}_MONOID_{_t.suffix_of(t)}")
    return TypedOpFamily(f"{name}_MONOID", by_type)


def _type_min(t: Type) -> Any:
    if t.is_float:
        return -np.inf
    return np.iinfo(t.np_dtype).min


def _type_max(t: Type) -> Any:
    if t.is_float:
        return np.inf
    return np.iinfo(t.np_dtype).max


PLUS_MONOID = _monoid_family(
    "PLUS", _b.PLUS, _t.NUMERIC_TYPES, lambda t: 0
)
TIMES_MONOID = _monoid_family(
    "TIMES", _b.TIMES, _t.NUMERIC_TYPES, lambda t: 1, lambda t: None
)
MIN_MONOID = _monoid_family(
    "MIN", _b.MIN, _t.NUMERIC_TYPES, _type_max, _type_min
)
MAX_MONOID = _monoid_family(
    "MAX", _b.MAX, _t.NUMERIC_TYPES, _type_min, _type_max
)

LOR_MONOID_BOOL = Monoid(
    "GrB_LOR_MONOID_BOOL", _b.LOR[_t.BOOL], False, True, is_builtin=True
)
LAND_MONOID_BOOL = Monoid(
    "GrB_LAND_MONOID_BOOL", _b.LAND[_t.BOOL], True, False, is_builtin=True
)
LXOR_MONOID_BOOL = Monoid(
    "GrB_LXOR_MONOID_BOOL", _b.LXOR[_t.BOOL], False, is_builtin=True
)
LXNOR_MONOID_BOOL = Monoid(
    "GrB_LXNOR_MONOID_BOOL", _b.LXNOR[_t.BOOL], True, is_builtin=True
)

LOR_MONOID = TypedOpFamily("LOR_MONOID", {_t.BOOL: LOR_MONOID_BOOL})
LAND_MONOID = TypedOpFamily("LAND_MONOID", {_t.BOOL: LAND_MONOID_BOOL})
LXOR_MONOID = TypedOpFamily("LXOR_MONOID", {_t.BOOL: LXOR_MONOID_BOOL})
LXNOR_MONOID = TypedOpFamily("LXNOR_MONOID", {_t.BOOL: LXNOR_MONOID_BOOL})

__all__ += ["LOR_MONOID_BOOL", "LAND_MONOID_BOOL", "LXOR_MONOID_BOOL",
            "LXNOR_MONOID_BOOL"]

PREDEFINED_MONOIDS = {
    "PLUS": PLUS_MONOID, "TIMES": TIMES_MONOID,
    "MIN": MIN_MONOID, "MAX": MAX_MONOID,
    "LOR": LOR_MONOID, "LAND": LAND_MONOID,
    "LXOR": LXOR_MONOID, "LXNOR": LXNOR_MONOID,
}

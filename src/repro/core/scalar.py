"""``GrB_Scalar`` — the new opaque scalar container (§VI, Table I).

A GraphBLAS scalar holds zero or one element of a domain.  Its two
purposes per the paper: collapsing nonpolymorphic method variants (the
scalar argument is always a ``GrB_Scalar`` instead of eleven typed
overloads plus ``void*``), and making behaviour uniform by allowing
*emptiness* — e.g. ``extractElement`` into a scalar needs no immediate
``NO_VALUE`` test and can be deferred; ``reduce`` of an empty container
yields an empty scalar instead of the monoid identity.

Table I surface: ``new``, ``dup``, ``clear``, ``nvals``, ``setElement``,
``extractElement`` — all implemented here, plus ``wait``/``error``/
``free`` inherited from the opaque-object base.
"""

from __future__ import annotations

from typing import Any

from .context import Context
from .errors import NoValue, NullPointerError
from .sequence import OpaqueObject
from .types import Type

__all__ = ["Scalar"]


class _ScalarData:
    """Immutable carrier: empty or holding one coerced value."""

    __slots__ = ("type", "present", "value")

    def __init__(self, t: Type, present: bool, value: Any):
        self.type = t
        self.present = present
        self.value = value


class Scalar(OpaqueObject):
    """An opaque, possibly-empty single-element container."""

    __slots__ = ("_type",)

    def __init__(self, t: Type, ctx: Context | None = None):
        if t is None:
            raise NullPointerError("scalar type is NULL")
        super().__init__(ctx)
        self._type = t
        self._data = _ScalarData(t, False, None)

    # -- Table I methods ------------------------------------------------------

    @classmethod
    def new(cls, t: Type, ctx: Context | None = None) -> "Scalar":
        """``GrB_Scalar_new(GrB_Scalar*, GrB_Type)``."""
        return cls(t, ctx)

    def dup(self) -> "Scalar":
        """``GrB_Scalar_dup`` — duplicate (forces this scalar first)."""
        data = self._capture()
        out = Scalar(self._type, self._ctx)
        out._data = _ScalarData(self._type, data.present, data.value)
        return out

    def clear(self) -> None:
        """``GrB_Scalar_clear`` — empty the container."""
        self._submit(
            lambda _d, _t=self._type: _ScalarData(_t, False, None),
            "Scalar_clear",
            can_raise=False,
        )

    def nvals(self) -> int:
        """``GrB_Scalar_nvals`` — 0 or 1 (a value-reading method: forces)."""
        return 1 if self._capture().present else 0

    def set_element(self, value: Any) -> None:
        """``GrB_Scalar_setElement`` — store (a cast of) ``value``.

        Accepts a plain Python value or another ``Scalar`` (the Table II
        uniform-argument style); an empty source scalar clears this one.
        """
        if isinstance(value, Scalar):
            src = value._capture()
            if not src.present:
                self.clear()
                return
            value = src.value
        coerced = self._type.coerce_scalar(value)
        self._submit(
            lambda _d, _t=self._type, _v=coerced: _ScalarData(_t, True, _v),
            "Scalar_setElement",
            can_raise=False,
        )

    def extract_element(self) -> Any:
        """``GrB_Scalar_extractElement`` — the stored value.

        Raises :class:`~repro.core.errors.NoValue` when empty (the
        C-style wrapper maps that to the ``GrB_NO_VALUE`` return code).
        """
        data = self._capture()
        if not data.present:
            raise NoValue("scalar is empty")
        return data.value

    # -- introspection ---------------------------------------------------------

    @property
    def type(self) -> Type:
        return self._type

    def is_empty(self) -> bool:
        return not self._capture().present

    def value_or(self, default: Any = None) -> Any:
        """Pythonic convenience: the value, or ``default`` when empty."""
        data = self._capture()
        return data.value if data.present else default

    # Hook used by Monoid.new for its Table II GrB_Scalar variant without
    # importing Scalar there (layering).
    def _monoid_identity_value(self) -> Any:
        return self.extract_element()

    # -- internal: used by operations writing a scalar output ----------------

    def _store_kernel_result(self, value: Any | None) -> None:
        """Enqueue 'set to value or empty' (reduce-to-scalar outputs)."""
        t = self._type
        if value is None:
            self._submit(lambda _d: _ScalarData(t, False, None), "reduce(empty)",
                         can_raise=False)
        else:
            coerced = t.coerce_scalar(value)
            self._submit(
                lambda _d: _ScalarData(t, True, coerced), "reduce",
                can_raise=False,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            if not self._valid:
                return "Scalar(<freed>)"
            if self._tail is not None:
                return f"Scalar({self._type.name}, <pending>)"
            d = self._data
            body = repr(d.value) if d.present else "<empty>"
            return f"Scalar({self._type.name}, {body})"

"""``GrB_Descriptor`` — per-call behaviour modifiers.

A descriptor is a set of (field, value) settings that modulate how an
operation treats its output, mask, and inputs:

* ``OUTP = REPLACE``  — clear the output before writing results through
  the mask ("replace" semantics); default is "merge".
* ``MASK = COMP``     — use the complement of the mask.
* ``MASK = STRUCTURE``— use the mask's structure (stored-ness) rather
  than its values; combinable with COMP.
* ``INP0/INP1 = TRAN``— transpose the first/second matrix input.

Descriptors are opaque in C; here they are small immutable-after-build
objects.  The predefined descriptor constants (``T0``, ``RC`` …) mirror
the spec's ``GrB_DESC_*`` family.  Setting the same field twice is the
``ALREADY_SET`` API error, matching ``GrB_Descriptor_set`` semantics.
"""

from __future__ import annotations

import enum

from .errors import ApiError, InvalidValueError
from .info import Info

__all__ = [
    "DescField",
    "DescValue",
    "Descriptor",
    "NULL_DESC",
    "DESC_T0",
    "DESC_T1",
    "DESC_T0T1",
    "DESC_C",
    "DESC_S",
    "DESC_SC",
    "DESC_R",
    "DESC_RT0",
    "DESC_RT1",
    "DESC_RT0T1",
    "DESC_RC",
    "DESC_RS",
    "DESC_RSC",
]


class DescField(enum.IntEnum):
    """``GrB_Desc_Field`` with explicit values (Section IX cleanup)."""

    OUTP = 0
    MASK = 1
    INP0 = 2
    INP1 = 3


class DescValue(enum.IntEnum):
    """``GrB_Desc_Value`` with explicit values."""

    DEFAULT = 0
    REPLACE = 1
    COMP = 2
    TRAN = 3
    STRUCTURE = 4


_VALID = {
    DescField.OUTP: {DescValue.REPLACE},
    DescField.MASK: {DescValue.COMP, DescValue.STRUCTURE},
    DescField.INP0: {DescValue.TRAN},
    DescField.INP1: {DescValue.TRAN},
}


class Descriptor:
    """An opaque descriptor object (``GrB_Descriptor``)."""

    __slots__ = ("_fields", "_frozen", "name")

    def __init__(self, name: str = "", **initial: bool):
        # _fields maps DescField -> set[DescValue]
        self._fields: dict[DescField, set[DescValue]] = {f: set() for f in DescField}
        self._frozen = False
        self.name = name
        for key, on in initial.items():
            if on:
                field, value = _KEYWORDS[key]
                self._fields[field].add(value)

    @classmethod
    def new(cls) -> "Descriptor":
        """``GrB_Descriptor_new``."""
        return cls()

    def set(self, field: DescField, value: DescValue) -> None:
        """``GrB_Descriptor_set``.

        Raises ``ALREADY_SET`` if the (field, value) pair is already
        present and ``INVALID_VALUE`` if the value is not legal for the
        field.
        """
        if self._frozen:
            raise InvalidValueError("predefined descriptors are immutable")
        field = DescField(field)
        value = DescValue(value)
        if value == DescValue.DEFAULT:
            self._fields[field].clear()
            return
        if value not in _VALID[field]:
            raise InvalidValueError(f"{value.name} is not valid for field {field.name}")
        if field == DescField.MASK:
            # COMP and STRUCTURE are combinable on MASK.
            if value in self._fields[field]:
                raise ApiError(f"{field.name}={value.name} already set", Info.ALREADY_SET)
            self._fields[field].add(value)
            return
        if self._fields[field]:
            raise ApiError(f"{field.name} already set", Info.ALREADY_SET)
        self._fields[field].add(value)

    def get(self, field: DescField) -> DescValue:
        """``GrB_Descriptor_get`` for single-valued fields."""
        vals = self._fields[DescField(field)]
        if not vals:
            return DescValue.DEFAULT
        return next(iter(sorted(vals)))

    def _freeze(self) -> "Descriptor":
        self._frozen = True
        return self

    # -- interpretation helpers used by the operations layer --------------

    @property
    def replace(self) -> bool:
        return DescValue.REPLACE in self._fields[DescField.OUTP]

    @property
    def mask_complement(self) -> bool:
        return DescValue.COMP in self._fields[DescField.MASK]

    @property
    def mask_structure(self) -> bool:
        return DescValue.STRUCTURE in self._fields[DescField.MASK]

    @property
    def transpose0(self) -> bool:
        return DescValue.TRAN in self._fields[DescField.INP0]

    @property
    def transpose1(self) -> bool:
        return DescValue.TRAN in self._fields[DescField.INP1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bits = []
        if self.replace:
            bits.append("REPLACE")
        if self.mask_structure:
            bits.append("STRUCTURE")
        if self.mask_complement:
            bits.append("COMP")
        if self.transpose0:
            bits.append("TRAN0")
        if self.transpose1:
            bits.append("TRAN1")
        label = self.name or ",".join(bits) or "DEFAULT"
        return f"Descriptor({label})"


_KEYWORDS = {
    "replace": (DescField.OUTP, DescValue.REPLACE),
    "comp": (DescField.MASK, DescValue.COMP),
    "structure": (DescField.MASK, DescValue.STRUCTURE),
    "tran0": (DescField.INP0, DescValue.TRAN),
    "tran1": (DescField.INP1, DescValue.TRAN),
}


def _predef(name: str, **kw: bool) -> Descriptor:
    return Descriptor(name=name, **kw)._freeze()


#: The NULL descriptor: defaults everywhere.  Passing ``None`` to any
#: operation means the same thing.
NULL_DESC = _predef("GrB_NULL")

DESC_T0 = _predef("GrB_DESC_T0", tran0=True)
DESC_T1 = _predef("GrB_DESC_T1", tran1=True)
DESC_T0T1 = _predef("GrB_DESC_T0T1", tran0=True, tran1=True)
DESC_C = _predef("GrB_DESC_C", comp=True)
DESC_S = _predef("GrB_DESC_S", structure=True)
DESC_SC = _predef("GrB_DESC_SC", structure=True, comp=True)
DESC_R = _predef("GrB_DESC_R", replace=True)
DESC_RT0 = _predef("GrB_DESC_RT0", replace=True, tran0=True)
DESC_RT1 = _predef("GrB_DESC_RT1", replace=True, tran1=True)
DESC_RT0T1 = _predef("GrB_DESC_RT0T1", replace=True, tran0=True, tran1=True)
DESC_RC = _predef("GrB_DESC_RC", replace=True, comp=True)
DESC_RS = _predef("GrB_DESC_RS", replace=True, structure=True)
DESC_RSC = _predef("GrB_DESC_RSC", replace=True, structure=True, comp=True)

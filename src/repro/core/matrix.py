"""``GrB_Matrix`` — the opaque sparse matrix object.

Wraps a CSR :class:`~repro.internals.containers.MatData` or hypersparse
DCSR :class:`~repro.internals.containers.DcsrData` carrier behind the
sequence/completion machinery; the format policy
(:func:`~repro.internals.containers.choose_mat_format`) picks between
them from the shape/occupancy, so row counts past the CSR pointer limit
work transparently when ``FORMAT_AUTO`` is on.  Constructors accept the
optional ``GrB_Context`` argument introduced in 2.0 (§IV, Fig. 2):

    ``GrB_Matrix_new(&A, type, nrows, ncols, ctx)``
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from ..internals.build import build_matrix
from ..internals.containers import (
    DcsrData,
    MatData,
    empty_mat_auto,
    insert_value,
    mat_from_coo,
    row_gather,
)
from .binaryop import BinaryOp
from .context import Context
from .errors import (
    IndexOutOfBoundsError,
    InvalidIndexError,
    InvalidValueError,
    NoValue,
    NullPointerError,
    OutputNotEmptyError,
)
from .scalar import Scalar
from .sequence import OpaqueObject
from .types import Type

__all__ = ["Matrix"]

_INT = np.int64


class Matrix(OpaqueObject):
    """An opaque sparse matrix of a fixed domain and shape."""

    __slots__ = ("_type", "_nrows", "_ncols")

    def __init__(
        self, t: Type, nrows: int, ncols: int, ctx: Context | None = None
    ):
        if t is None:
            raise NullPointerError("matrix type is NULL")
        if nrows < 0 or ncols < 0:
            raise InvalidValueError(f"matrix shape must be >= 0, got {(nrows, ncols)}")
        super().__init__(ctx)
        self._type = t
        self._nrows = int(nrows)
        self._ncols = int(ncols)
        # Raises the documented resource-limit error when the policy
        # pins CSR (FORMAT_AUTO=0) and nrows exceeds the pointer limit.
        self._data = empty_mat_auto(self._nrows, self._ncols, t)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def new(
        cls, t: Type, nrows: int, ncols: int, ctx: Context | None = None
    ) -> "Matrix":
        """``GrB_Matrix_new(&A, d, nrows, ncols, ctx)`` (Fig. 2 signature)."""
        return cls(t, nrows, ncols, ctx)

    def dup(self) -> "Matrix":
        """``GrB_Matrix_dup``."""
        data = self._capture()
        out = Matrix(self._type, self._nrows, self._ncols, self._ctx)
        out._data = data
        return out

    @classmethod
    def from_data(
        cls, data: "MatData | DcsrData", ctx: Context | None = None
    ) -> "Matrix":
        """Internal/advanced: wrap an existing carrier (no copy)."""
        out = cls(data.type, data.nrows, data.ncols, ctx)
        out._data = data
        return out

    @classmethod
    def diag(cls, v, k: int = 0, ctx: Context | None = None) -> "Matrix":
        """``GrB_Matrix_diag`` — square matrix with ``v`` on diagonal ``k``."""
        d = v._capture()
        n = d.size + abs(int(k))
        rows = d.indices if k >= 0 else d.indices - k
        cols = d.indices + k if k >= 0 else d.indices
        out = cls(d.type, n, n, ctx)
        out._data = build_matrix(n, n, d.type, rows, cols, d.values, None)
        return out

    # -- shape / pattern -----------------------------------------------------------

    @property
    def type(self) -> Type:
        return self._type

    @property
    def nrows(self) -> int:
        """``GrB_Matrix_nrows``."""
        return self._nrows

    @property
    def ncols(self) -> int:
        """``GrB_Matrix_ncols``."""
        return self._ncols

    @property
    def shape(self) -> tuple[int, int]:
        return (self._nrows, self._ncols)

    def nvals(self) -> int:
        """``GrB_Matrix_nvals`` (forces the sequence)."""
        return self._capture().nvals

    # -- element access ---------------------------------------------------------------

    def build(
        self,
        row_indices: Iterable[int],
        col_indices: Iterable[int],
        values: Iterable[Any],
        dup: BinaryOp | None = None,
    ) -> None:
        """``GrB_Matrix_build`` with the §IX optional-``dup`` rule.

        With ``dup=None`` (``GrB_NULL``) duplicates raise
        :class:`~repro.core.errors.DuplicateIndexError` — an execution
        error, deferred in nonblocking mode.
        """
        if self.nvals() != 0:
            raise OutputNotEmptyError("build requires an empty matrix")
        r = np.asarray(list(row_indices) if not isinstance(row_indices, np.ndarray) else row_indices)
        c = np.asarray(list(col_indices) if not isinstance(col_indices, np.ndarray) else col_indices)
        v = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if not (r.size == c.size == v.size):
            raise InvalidValueError("rows/cols/values length mismatch")
        nrows, ncols, t = self._nrows, self._ncols, self._type
        self._submit(
            lambda _d: build_matrix(nrows, ncols, t, r, c, v, dup),
            "Matrix_build",
        )

    def update_batch(self, row_indices, col_indices, values) -> dict:
        """Batched edge upsert — the streaming-ingest fast path (GxB ext).

        Applies a COO batch against the current carrier in one sorted
        positional merge (O(nnz + d log d), no full re-sort; duplicates
        within the batch resolve last-write-wins like ``build`` with a
        SECOND dup).  Unlike ``build`` the matrix need not be empty:
        existing keys are overwritten, new keys inserted.

        Eager in *both* modes: the merge is the materialization, and
        committing before the version advances is what makes the memo's
        delta tier sound — dependent blocks are patched from the write
        set (``ENGINE_DELTA``) only after the new carrier passed the
        transactional commit gate, so a mid-merge fault leaves both the
        carrier and every cached block at their pre-write state.

        Returns ``{"inserted": ..., "updated": ..., "nvals": ...}``.
        """
        from ..internals.stream import apply_delta, build_delta

        while True:
            # Drain any deferred sequence first (lock released while the
            # engine forces); re-check under the lock in case a racing
            # writer appended another node.
            self._capture()
            with self._lock:
                self._check_valid()
                if self._tail is not None:
                    continue
                base = self._data
                # Validates lengths/bounds/dtype eagerly (API errors are
                # never deferred) before any state moves.
                try:
                    delta = build_delta(
                        base, row_indices, col_indices, values
                    )
                except IndexOutOfBoundsError as exc:
                    raise InvalidIndexError(str(exc)) from None
                if delta.n:
                    self._data = self._run_now(
                        "Matrix_updateBatch", lambda: apply_delta(base, delta)
                    )
                    self._materialized = True
                    self._advance(delta)
                return {
                    "inserted": delta.n_new,
                    "updated": delta.n - delta.n_new,
                    "nvals": self._data.nvals,
                }

    def set_element(self, value: Any, row: int, col: int) -> None:
        """``GrB_Matrix_setElement`` (plain value or ``GrB_Scalar``)."""
        row, col = int(row), int(col)
        self._check_coords(row, col)
        if isinstance(value, Scalar):
            src = value._capture()
            if not src.present:
                self.remove_element(row, col)
                return
            value = src.value
        coerced = self._type.coerce_scalar(value)
        t = self._type

        def thunk(d):
            if isinstance(d, DcsrData):
                # Hypersparse: locate the row by binary search over the
                # nonempty-row list; an absent row is spliced in.
                ri = int(np.searchsorted(d.row_ids, row))
                if ri < len(d.row_ids) and d.row_ids[ri] == row:
                    lo, hi = int(d.indptr[ri]), int(d.indptr[ri + 1])
                    pos = lo + int(np.searchsorted(d.col_indices[lo:hi], col))
                    if pos < hi and d.col_indices[pos] == col:
                        vals = d.values.copy()
                        vals[pos] = coerced
                        return DcsrData(d.nrows, d.ncols, t, d.row_ids,
                                        d.indptr, d.col_indices, vals)
                    row_ids = d.row_ids
                    indptr = d.indptr.copy()
                else:
                    pos = int(d.indptr[ri])
                    row_ids = np.insert(d.row_ids, ri, row).astype(_INT)
                    indptr = np.insert(d.indptr, ri, d.indptr[ri]).astype(_INT)
                indptr[ri + 1:] += 1
                cols = np.insert(d.col_indices, pos, col).astype(_INT)
                vals = insert_value(d.values, pos, coerced, t)
                return DcsrData(d.nrows, d.ncols, t, row_ids, indptr,
                                cols, vals)
            lo, hi = d.indptr[row], d.indptr[row + 1]
            pos = lo + int(np.searchsorted(d.col_indices[lo:hi], col))
            if pos < hi and d.col_indices[pos] == col:
                vals = d.values.copy()
                vals[pos] = coerced
                return MatData(d.nrows, d.ncols, t, d.indptr, d.col_indices, vals)
            indptr = d.indptr.copy()
            indptr[row + 1:] += 1
            cols = np.insert(d.col_indices, pos, col).astype(_INT)
            vals = insert_value(d.values, pos, coerced, t)
            return MatData(d.nrows, d.ncols, t, indptr, cols, vals)

        self._submit(thunk, "Matrix_setElement", can_raise=False)

    def remove_element(self, row: int, col: int) -> None:
        """``GrB_Matrix_removeElement``."""
        row, col = int(row), int(col)
        self._check_coords(row, col)
        t = self._type

        def thunk(d):
            if isinstance(d, DcsrData):
                ri = int(np.searchsorted(d.row_ids, row))
                if ri >= len(d.row_ids) or d.row_ids[ri] != row:
                    return d
                lo, hi = int(d.indptr[ri]), int(d.indptr[ri + 1])
                pos = lo + int(np.searchsorted(d.col_indices[lo:hi], col))
                if pos >= hi or d.col_indices[pos] != col:
                    return d
                cols = np.delete(d.col_indices, pos)
                vals = np.delete(d.values, pos)
                if hi - lo == 1:
                    # Last element of the row: the row leaves the
                    # nonempty-row list (DCSR stores no empty rows).
                    row_ids = np.delete(d.row_ids, ri)
                    indptr = np.delete(d.indptr, ri)
                    indptr[ri:] -= 1
                else:
                    row_ids = d.row_ids
                    indptr = d.indptr.copy()
                    indptr[ri + 1:] -= 1
                return DcsrData(d.nrows, d.ncols, t, row_ids, indptr,
                                cols, vals)
            lo, hi = d.indptr[row], d.indptr[row + 1]
            pos = lo + int(np.searchsorted(d.col_indices[lo:hi], col))
            if pos < hi and d.col_indices[pos] == col:
                indptr = d.indptr.copy()
                indptr[row + 1:] -= 1
                return MatData(
                    d.nrows, d.ncols, t, indptr,
                    np.delete(d.col_indices, pos), np.delete(d.values, pos),
                )
            return d

        self._submit(thunk, "Matrix_removeElement", can_raise=False)

    def extract_element(self, row: int, col: int, out: Scalar | None = None):
        """``GrB_Matrix_extractElement`` — typed or ``GrB_Scalar`` variant.

        The ``GrB_Scalar`` variant (Table II) returns an empty scalar
        for a missing element instead of forcing an immediate
        ``NO_VALUE`` check (§VI).
        """
        row, col = int(row), int(col)
        self._check_coords(row, col)
        d = self._capture()
        lo_a, hi_a = row_gather(d, [row])
        lo, hi = int(lo_a[0]), int(hi_a[0])
        pos = lo + int(np.searchsorted(d.col_indices[lo:hi], col))
        present = pos < hi and d.col_indices[pos] == col
        if out is not None:
            out._store_kernel_result(d.values[pos] if present else None)
            return out
        if not present:
            raise NoValue(f"no element at ({row}, {col})")
        return d.values[pos]

    def extract_tuples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``GrB_Matrix_extractTuples`` — (rows, cols, values) copies."""
        d = self._capture()
        return d.row_indices(), d.col_indices.copy(), d.values.copy()

    def clear(self) -> None:
        """``GrB_Matrix_clear``."""
        nrows, ncols, t = self._nrows, self._ncols, self._type
        self._submit(lambda _d: empty_mat_auto(nrows, ncols, t),
                     "Matrix_clear", can_raise=False)

    def resize(self, nrows: int, ncols: int) -> None:
        """``GrB_Matrix_resize`` — shrink drops out-of-range elements."""
        nrows, ncols = int(nrows), int(ncols)
        if nrows < 0 or ncols < 0:
            raise InvalidValueError("shape must be >= 0")
        t = self._type

        def thunk(d):
            rows = d.row_indices()
            keep = (rows < nrows) & (d.col_indices < ncols)
            # Policy-choosing assembly: growing past the CSR row limit
            # (or shrinking back under it) switches format here.
            return mat_from_coo(
                nrows, ncols, t,
                rows[keep], d.col_indices[keep], d.values[keep],
                presorted=True,
            )

        self._submit(thunk, "Matrix_resize", can_raise=False)
        self._nrows = nrows
        self._ncols = ncols

    def _check_coords(self, row: int, col: int) -> None:
        if not (0 <= row < self._nrows):
            raise InvalidIndexError(f"row {row} out of range [0, {self._nrows})")
        if not (0 <= col < self._ncols):
            raise InvalidIndexError(f"col {col} out of range [0, {self._ncols})")

    # -- pythonic conveniences ----------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Densify (testing/debug helper; not part of the C surface)."""
        return self._capture().to_dense()

    def to_dict(self) -> dict[tuple[int, int], Any]:
        d = self._capture()
        return {
            (int(i), int(j)): v
            for i, j, v in zip(d.row_indices(), d.col_indices, d.values)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            if not self._valid:
                return "Matrix(<freed>)"
            state = ("<pending>" if self._tail is not None
                     else f"nvals={self._data.nvals}")
            return (
                f"Matrix({self._type.name}, "
                f"shape=({self._nrows}, {self._ncols}), {state})"
            )

"""Deferred sequences, completion, and the opaque-object base (§III, §V).

The paper defines the *sequence* of a GraphBLAS object as the ordered
collection of method calls that define it at a point in the program.  In
nonblocking mode an implementation may defer, reorder, and optimize that
sequence; the object's state is then ambiguous until it is **complete**.

Our execution model:

* In ``BLOCKING`` mode every operation executes at the call.
* In ``NONBLOCKING`` mode a method call becomes a node in the
  expression DAG of :mod:`repro.engine`: the object's ``_tail`` points
  at the node for its latest state, each node's ``prev`` edge is the
  per-object sequence order, and inputs are captured as :class:`Source`
  references (cheap — a materialized carrier is immutable, a pending
  input is captured as a reference to its producing *node*, which is
  itself a snapshot: later mutations of the input append new nodes and
  never change the captured one).  The subgraph reachable from a tail
  is forced — fused and scheduled by the engine — by:

  - ``wait(COMPLETE)`` / ``wait(MATERIALIZE)`` (``GrB_wait``),
  - any value-reading method (``nvals``, ``extractElement``, export…),
  - use of the object as an *input* to another operation *in blocking
    mode* (nonblocking consumers just add a data edge).

* Execution errors raised while forcing are recorded on the object
  (retrievable thread-safely via :func:`error_string`, the analogue of
  ``GrB_error``) and re-raised at the forcing call; the failing
  object's remaining sequence is dropped and it keeps its pre-failure
  state.  API errors are never deferred: the operations layer validates
  arguments before building any node.

* ``wait(COMPLETE)`` is allowed to leave the sequence deferred when no
  pending ancestor can raise an execution error (§V only requires that
  errors from the sequence have been surfaced); ``wait(MATERIALIZE)``
  always forces and marks the object materialized.

Thread safety (§III): every opaque object owns an ``RLock`` guarding
its tail/error/lifecycle fields; the engine serializes forcings behind
a process-wide execution lock (kernels inside one forcing still run
concurrently).  Independent method calls from different threads
therefore serialize, giving the "sequential execution in some
interleaved order" guarantee.  The cross-thread hand-off of a *shared*
object additionally needs ``wait()`` plus a host-language
synchronized-with edge, exactly as the paper's Figure 1 program
demonstrates (reproduced in ``examples/fig1_two_thread_pipeline.py``).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Sequence

from ..engine.dag import DONE, FAILED, Node, Source
from ..engine.memo import (
    invalidate_handle,
    patch_handle_blocks,
    release_handle,
)
from ..engine.stats import STATS
from ..engine.txn import commit as _txn_commit
from ..faults.retry import with_retry
from .context import Context, Mode, WaitMode, default_context
from .errors import (
    ExecutionError,
    GraphBLASError,
    PanicError,
    UninitializedObjectError,
)

__all__ = ["OpaqueObject", "error_string", "wait"]

#: Monotonic handle identity: unlike ``id()``, a uid is never reused,
#: so the result memo's versioned keys can never alias a dead handle.
_UIDS = itertools.count(1)


class OpaqueObject:
    """Base for Scalar / Vector / Matrix: sequence + error state + lock."""

    __slots__ = (
        "_lock", "_tail", "_err", "_ctx",
        "_data", "_valid", "_materialized",
        "_uid", "_version",
    )

    def __init__(self, ctx: Context | None):
        self._lock = threading.RLock()
        self._tail: Node | None = None
        self._err: str = ""
        self._ctx = ctx if ctx is not None else default_context()
        self._ctx.check_valid()
        self._data: Any = None  # set by subclass
        self._valid = True
        self._materialized = True
        self._uid = next(_UIDS)
        self._version = 0

    # -- context -----------------------------------------------------------

    @property
    def context(self) -> Context:
        return self._ctx

    def _switch_context(self, new_ctx: Context) -> None:
        with self._lock:
            self._check_valid()
            self._ctx = new_ctx

    @property
    def _mode(self) -> Mode:
        return self._ctx.mode

    def _check_valid(self) -> None:
        if not self._valid:
            raise UninitializedObjectError(
                f"{type(self).__name__} has been freed"
            )

    # -- sequence machinery ---------------------------------------------------

    def _prev_source(self) -> Source:
        """Sequence edge to this object's current state (lock held).

        A materialized capture carries the handle's versioned identity
        (``vkey``) so the cross-forcing result memo can recognise the
        same committed carrier in a later sequence.
        """
        if self._tail is not None:
            return Source.of_node(self._tail)
        return Source.of_data(self._data, vkey=(self._uid, self._version))

    def _advance(self, delta=None) -> None:
        """A write happened: bump the handle version and drop memo
        entries that depended on the previous committed state.

        A batched write may pass its :class:`~repro.internals.stream.
        WriteDelta` so the memo's delta tier can *patch* dependent
        blocks across the version bump instead of dropping them.
        """
        old = self._version
        self._version += 1
        if delta is not None:
            patch_handle_blocks(self._uid, old, self._version, delta)
        else:
            invalidate_handle(self._uid)

    def _as_source(self) -> Source:
        """Capture this object as an *input* of a deferred operation.

        A snapshot by construction: a pending object is captured as its
        current tail node, a materialized one as its immutable carrier.
        """
        with self._lock:
            self._check_valid()
            return self._prev_source()

    def _submit(
        self,
        thunk: Callable[[Any], Any],
        label: str,
        *,
        can_raise: bool = True,
        inputs: Sequence[Source] = (),
    ) -> None:
        """Run now (blocking mode) or append a DAG node (nonblocking).

        ``thunk(current_data) -> new_data``.  All argument validation
        must happen *before* ``_submit`` — API errors are never
        deferred.  ``can_raise=False`` marks methods that cannot raise
        an execution error (element writes, clear, resize…), which lets
        ``wait(COMPLETE)`` leave them legally deferred.  ``inputs`` are
        engine sources the thunk resolves internally (the scheduler
        settles them first).
        """
        with self._lock:
            self._check_valid()
            if self._mode == Mode.BLOCKING:
                self._data = self._run_now(label, lambda: thunk(self._data))
                self._advance()
                return
            self._tail = Node(
                kind="method",
                label=label,
                owner=self,
                prev=self._prev_source(),
                inputs=inputs,
                thunk=thunk,
                complete_safe=not can_raise,
            )
            self._materialized = False
            self._advance()

    def _submit_op(
        self,
        *,
        kind: str,
        label: str,
        inputs: Sequence[Source] = (),
        compute: Callable[[list], Any] | None = None,
        writeback: Callable[[Any, Any], Any] | None = None,
        stages: list | None = None,
        pipe_input: int = 0,
        out_type: Any = None,
        pure: bool = False,
        complete_safe: bool = False,
        opkey: tuple | None = None,
        cse_safe: bool = False,
        mask_info: Any = None,
        pushable: bool = False,
        push_targets: tuple | None = None,
        batch_key: tuple | None = None,
        batch_compute: Callable | None = None,
    ) -> None:
        """Submit an operations-layer method (the fusable node shape).

        ``compute(datas) -> T`` produces the unmasked result from the
        resolved input carriers (or ``stages`` describe a fusable
        pipeline over ``inputs[pipe_input]``); ``writeback(prev, T)``
        applies mask/accumulator/replace against the previous state.
        ``pure`` asserts the write-back ignores ``prev`` entirely (no
        mask, no complement, no accumulator) — the property fusion needs.
        ``opkey``/``cse_safe``/``mask_info``/``pushable`` are planner
        metadata (structural identity for hash-consing, write-back shape
        for mask pushdown); blocking mode ignores them.
        """
        if self._mode == Mode.BLOCKING:
            # Inputs are concrete in blocking mode (captures force).
            def _run():
                if stages is not None:
                    from ..internals.applyselect import run_stages

                    t = run_stages(inputs[pipe_input].resolve(), stages)
                else:
                    t = compute([s.resolve() for s in inputs])
                prev = None if pure else self._data
                return writeback(prev, t)

            with self._lock:
                self._check_valid()
                self._data = self._run_now(label, _run)
                self._advance()
            return
        with self._lock:
            self._check_valid()
            self._tail = Node(
                kind=kind,
                label=label,
                owner=self,
                prev=self._prev_source(),
                inputs=inputs,
                compute=compute,
                writeback=writeback,
                stages=stages,
                pipe_input=pipe_input,
                out_type=out_type,
                pure=pure,
                complete_safe=complete_safe,
                opkey=opkey,
                cse_safe=cse_safe,
                mask_info=mask_info,
                pushable=pushable,
                push_targets=push_targets,
                batch_key=batch_key,
                batch_compute=batch_compute,
            )
            self._materialized = False
            self._advance()
            if batch_key is not None:
                from ..engine import opbatch

                opbatch.register(self._tail)

    def _run_now(self, label: str, fn: Callable[[], Any]) -> Any:
        """Blocking-mode execution with the §V error wrapping.

        Runs as a *transaction*: the method's scratch result passes the
        commit gate inside the transient-fault retry envelope, so a
        mid-kernel fault leaves ``_data`` untouched (the reference store
        below never happens) and transient faults are retried with
        backoff before they surface.
        """
        try:
            return with_retry(lambda: _txn_commit(label, fn()), label)
        except ExecutionError as exc:
            # §V: the OUT/INOUT argument's state is undefined after an
            # execution error; we keep the previous data and record the
            # error for GrB_error.
            self._err = f"{label}: {exc.message}"
            raise
        except GraphBLASError:
            raise
        except Exception as exc:
            # A user-defined operator raised while the kernel ran (in C
            # this is a crash inside a function pointer).  We give it
            # defined behaviour: GrB_PANIC, reported like any execution
            # error — deferred in nonblocking mode, recorded on the
            # object for GrB_error.
            message = (
                f"{label}: user-defined function raised "
                f"{type(exc).__name__}: {exc}"
            )
            self._err = message
            raise PanicError(message) from exc

    def _force(self) -> Any:
        """Complete the sequence; returns the (now definite) carrier.

        The first execution error raised by a deferred method surfaces
        here — at the forcing call — and drops the rest of the sequence
        (the object's state is undefined per §V; we keep the data from
        before the failing method).
        """
        with self._lock:
            self._check_valid()
            tail = self._tail
        if tail is None:
            return self._data
        from ..engine import scheduler

        try:
            result = scheduler.force(tail)
        except (ExecutionError, GraphBLASError):
            with self._lock:
                if self._tail is tail:
                    # Drop the rest of the sequence; keep the
                    # pre-failure carrier the engine recorded.
                    self._data = tail.result
                    self._tail = None
            raise
        with self._lock:
            if self._tail is tail:
                self._data = result
                self._tail = None
            return result

    def _capture(self) -> Any:
        """Force and snapshot the carrier (eager readers, exports)."""
        return self._force()

    def _sequence_labels(self) -> list[str]:
        """Labels of still-deferred methods, oldest first (diagnostics)."""
        with self._lock:
            labels: list[str] = []
            node = self._tail
            while node is not None and node.state not in (DONE, FAILED):
                labels.append(node.label)
                node = node.prev.node
            labels.reverse()
            return labels

    # -- the 2.0 wait / error surface -----------------------------------------

    def wait(self, mode: WaitMode = WaitMode.MATERIALIZE) -> None:
        """``GrB_wait(obj, mode)`` (§III completion, §V materialization).

        ``COMPLETE`` guarantees all execution errors of the sequence
        have been surfaced and the object can be handed to another
        thread (with a host-language synchronized-with edge); when every
        pending method is statically error-free the engine may leave the
        sequence deferred — the optimization freedom §III grants.
        ``MATERIALIZE`` additionally forces evaluation and pins the
        internal representation.
        """
        mode = WaitMode(mode)
        with self._lock:
            self._check_valid()
            tail = self._tail
        if mode == WaitMode.COMPLETE:
            if tail is None:
                return
            from ..engine import scheduler

            if scheduler.chain_complete_safe(tail):
                STATS.bump("completes_deferred")
                return
            self._force()
            return
        self._force()
        with self._lock:
            self._materialized = True

    @property
    def is_materialized(self) -> bool:
        with self._lock:
            return self._materialized and self._tail is None

    def error(self) -> str:
        """``GrB_error(&str, obj)`` — last execution-error string (§V).

        Thread safe: two threads may call it concurrently on the same
        object.  An empty string is always a legal result.
        """
        with self._lock:
            return self._err

    # -- lifecycle -------------------------------------------------------------

    def free(self) -> None:
        """``GrB_free`` — release; the handle then behaves uninitialized.

        Dropping the handle also drops every result-memo entry that
        depends on it — both entries computed *from* it and entries
        cached *for* it — so freed carriers stay collectable.
        """
        with self._lock:
            self._tail = None
            self._data = None
            self._valid = False
        release_handle(self._uid)


def wait(obj: OpaqueObject, mode: WaitMode = WaitMode.MATERIALIZE) -> None:
    """Free-function spelling of :meth:`OpaqueObject.wait` (C-style API)."""
    obj.wait(mode)


def error_string(obj: OpaqueObject) -> str:
    """Free-function spelling of :meth:`OpaqueObject.error` (C-style API)."""
    return obj.error()

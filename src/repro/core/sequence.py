"""Deferred sequences, completion, and the opaque-object base (§III, §V).

The paper defines the *sequence* of a GraphBLAS object as the ordered
collection of method calls that define it at a point in the program.  In
nonblocking mode an implementation may defer or reorder that sequence;
the object's state is then ambiguous until it is **complete**.

Our execution model:

* In ``BLOCKING`` mode every operation executes at the call.
* In ``NONBLOCKING`` mode an operation *captures* its inputs (cheap —
  carriers are immutable once published) and enqueues a thunk on the
  output object's sequence.  The sequence is forced, in order, by:

  - ``wait(COMPLETE)`` / ``wait(MATERIALIZE)`` (``GrB_wait``),
  - any value-reading method (``nvals``, ``extractElement``, export…),
  - use of the object as an *input* to another operation.

* Execution errors raised while forcing are recorded on the object
  (retrievable thread-safely via :func:`error_string`, the analogue of
  ``GrB_error``) and re-raised at the forcing call.  API errors are
  never deferred: the operations layer validates arguments before
  enqueueing anything.

Thread safety (§III): every opaque object owns an ``RLock``; sequence
mutation and forcing happen under it.  Independent method calls from
different threads therefore serialize per object, giving the
"sequential execution in some interleaved order" guarantee.  The
cross-thread hand-off of a *shared* object additionally needs
``wait()`` plus a host-language synchronized-with edge, exactly as the
paper's Figure 1 program demonstrates (reproduced in
``examples/fig1_two_thread_pipeline.py``).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .context import Context, Mode, WaitMode, default_context
from .errors import (
    ExecutionError,
    GraphBLASError,
    PanicError,
    UninitializedObjectError,
)

__all__ = ["OpaqueObject", "error_string", "wait"]


class _Pending:
    """One deferred method invocation in an object's sequence."""

    __slots__ = ("thunk", "label")

    def __init__(self, thunk: Callable[[Any], Any], label: str):
        self.thunk = thunk
        self.label = label


class OpaqueObject:
    """Base for Scalar / Vector / Matrix: sequence + error state + lock."""

    __slots__ = (
        "_lock", "_pending", "_err", "_ctx",
        "_data", "_valid", "_materialized",
    )

    def __init__(self, ctx: Context | None):
        self._lock = threading.RLock()
        self._pending: list[_Pending] = []
        self._err: str = ""
        self._ctx = ctx if ctx is not None else default_context()
        self._ctx.check_valid()
        self._data: Any = None  # set by subclass
        self._valid = True
        self._materialized = True

    # -- context -----------------------------------------------------------

    @property
    def context(self) -> Context:
        return self._ctx

    def _switch_context(self, new_ctx: Context) -> None:
        with self._lock:
            self._check_valid()
            self._ctx = new_ctx

    @property
    def _mode(self) -> Mode:
        return self._ctx.mode

    def _check_valid(self) -> None:
        if not self._valid:
            raise UninitializedObjectError(
                f"{type(self).__name__} has been freed"
            )

    # -- sequence machinery ---------------------------------------------------

    def _submit(self, thunk: Callable[[Any], Any], label: str) -> None:
        """Run now (blocking mode) or append to the sequence (nonblocking).

        ``thunk(current_data) -> new_data``.  All argument validation
        must happen *before* ``_submit`` — API errors are never deferred.
        """
        with self._lock:
            self._check_valid()
            if self._mode == Mode.BLOCKING:
                self._run_one(_Pending(thunk, label))
            else:
                self._pending.append(_Pending(thunk, label))
                self._materialized = False

    def _run_one(self, op: _Pending) -> None:
        try:
            self._data = op.thunk(self._data)
        except ExecutionError as exc:
            # §V: the OUT/INOUT argument's state is undefined after an
            # execution error; we keep the previous data and record the
            # error for GrB_error.
            self._err = f"{op.label}: {exc.message}"
            raise
        except GraphBLASError:
            raise
        except Exception as exc:
            # A user-defined operator raised while the kernel ran (in C
            # this is a crash inside a function pointer).  We give it
            # defined behaviour: GrB_PANIC, reported like any execution
            # error — deferred in nonblocking mode, recorded on the
            # object for GrB_error.
            message = (
                f"{op.label}: user-defined function raised "
                f"{type(exc).__name__}: {exc}"
            )
            self._err = message
            raise PanicError(message) from exc

    def _force(self) -> Any:
        """Complete the sequence; returns the (now definite) carrier.

        The first execution error raised by a deferred method surfaces
        here — at the forcing call — and drops the rest of the sequence
        (the object's state is undefined per §V; we keep the data from
        before the failing method).
        """
        with self._lock:
            self._check_valid()
            while self._pending:
                op = self._pending.pop(0)
                try:
                    self._run_one(op)
                except (ExecutionError, GraphBLASError):
                    self._pending.clear()
                    raise
            return self._data

    def _capture(self) -> Any:
        """Force and snapshot the carrier (inputs of other operations)."""
        return self._force()

    # -- the 2.0 wait / error surface -----------------------------------------

    def wait(self, mode: WaitMode = WaitMode.MATERIALIZE) -> None:
        """``GrB_wait(obj, mode)`` (§III completion, §V materialization).

        ``COMPLETE`` finishes the computations of the object's sequence
        and resolves internal data structures so the object can be
        handed to another thread (with a host-language synchronized-with
        edge).  ``MATERIALIZE`` additionally guarantees that no further
        errors can be reported from the already-completed methods.  As
        the spec permits, our completing wait is computationally
        equivalent to a materializing wait; the two still differ in the
        state they record.
        """
        mode = WaitMode(mode)
        with self._lock:
            self._force()
            if mode == WaitMode.MATERIALIZE:
                self._materialized = True

    @property
    def is_materialized(self) -> bool:
        with self._lock:
            return self._materialized and not self._pending

    def error(self) -> str:
        """``GrB_error(&str, obj)`` — last execution-error string (§V).

        Thread safe: two threads may call it concurrently on the same
        object.  An empty string is always a legal result.
        """
        with self._lock:
            return self._err

    # -- lifecycle -------------------------------------------------------------

    def free(self) -> None:
        """``GrB_free`` — release; the handle then behaves uninitialized."""
        with self._lock:
            self._pending.clear()
            self._data = None
            self._valid = False


def wait(obj: OpaqueObject, mode: WaitMode = WaitMode.MATERIALIZE) -> None:
    """Free-function spelling of :meth:`OpaqueObject.wait` (C-style API)."""
    obj.wait(mode)


def error_string(obj: OpaqueObject) -> str:
    """Free-function spelling of :meth:`OpaqueObject.error` (C-style API)."""
    return obj.error()

"""Exception taxonomy implementing the GraphBLAS 2.0 error model (§V).

The C API reports errors through ``GrB_Info`` return codes; in Python we
raise exceptions that *carry* the corresponding :class:`~repro.core.info.Info`
code.  The split the paper draws is preserved:

* :class:`ApiError` — raised immediately by every method, in every mode.
  The specification guarantees that on an API error none of the method's
  arguments (nor any other program data) have been modified; our
  operations validate all arguments *before* touching any output.
* :class:`ExecutionError` — raised when a well-formed invocation fails
  while executing.  In nonblocking mode the raise happens at the forcing
  call (``wait``, a value-reading method, or use as an input), and the
  error text is recorded on the object so that ``error(obj)``
  (``GrB_error``) can retrieve it afterwards, thread-safely.

Each concrete subclass corresponds to one enum member so tests can assert
on types rather than codes.
"""

from __future__ import annotations

from .info import Info

__all__ = [
    "GraphBLASError",
    "ApiError",
    "ExecutionError",
    "NullPointerError",
    "InvalidValueError",
    "InvalidIndexError",
    "DomainMismatchError",
    "DimensionMismatchError",
    "OutputNotEmptyError",
    "NotImplementedGrBError",
    "UninitializedObjectError",
    "PanicError",
    "OutOfMemoryError",
    "InsufficientSpaceError",
    "InvalidObjectError",
    "IndexOutOfBoundsError",
    "EmptyObjectError",
    "TimeoutExpiredError",
    "DuplicateIndexError",
    "NoValue",
    "api_error_for",
    "execution_error_for",
]


class GraphBLASError(Exception):
    """Base for all GraphBLAS errors.  Carries the ``GrB_Info`` code."""

    info: Info = Info.PANIC

    def __init__(self, message: str = "", info: Info | None = None):
        super().__init__(message or self.__class__.__name__)
        if info is not None:
            self.info = info

    @property
    def message(self) -> str:
        return self.args[0] if self.args else ""


class ApiError(GraphBLASError):
    """Malformed method call.  Never deferred; no data was modified."""

    info = Info.INVALID_VALUE


class ExecutionError(GraphBLASError):
    """Well-formed call failed during execution; may be deferred (§V)."""

    info = Info.PANIC


# ---------------------------------------------------------------------------
# API errors
# ---------------------------------------------------------------------------

class UninitializedObjectError(ApiError):
    info = Info.UNINITIALIZED_OBJECT


class NullPointerError(ApiError):
    info = Info.NULL_POINTER


class InvalidValueError(ApiError):
    info = Info.INVALID_VALUE


class InvalidIndexError(ApiError):
    info = Info.INVALID_INDEX


class DomainMismatchError(ApiError):
    info = Info.DOMAIN_MISMATCH


class DimensionMismatchError(ApiError):
    info = Info.DIMENSION_MISMATCH


class OutputNotEmptyError(ApiError):
    info = Info.OUTPUT_NOT_EMPTY


class NotImplementedGrBError(ApiError):
    info = Info.NOT_IMPLEMENTED


# ---------------------------------------------------------------------------
# Execution errors
# ---------------------------------------------------------------------------

class PanicError(ExecutionError):
    info = Info.PANIC


class OutOfMemoryError(ExecutionError):
    info = Info.OUT_OF_MEMORY


class InsufficientSpaceError(ExecutionError):
    info = Info.INSUFFICIENT_SPACE


class InvalidObjectError(ExecutionError):
    info = Info.INVALID_OBJECT


class IndexOutOfBoundsError(ExecutionError):
    info = Info.INDEX_OUT_OF_BOUNDS


class EmptyObjectError(ExecutionError):
    info = Info.EMPTY_OBJECT


class TimeoutExpiredError(ExecutionError):
    """A query's deadline expired or the client abandoned it (GrB_TIMEOUT).

    Transient in the §V sense *to the caller*: re-invocation with a fresh
    deadline may succeed.  The internal retry ladder must never retry it
    — the deadline that expired stays expired — so ``faults/retry.py``
    special-cases this type.  Cancellation is cooperative: the raise
    happens at a kernel or pass boundary, before the transactional commit
    gate, so outputs keep their last-committed value.
    """

    info = Info.TIMEOUT

    def __init__(self, message: str = "", info: Info | None = None):
        super().__init__(message, info)
        self.transient = True


class DuplicateIndexError(ExecutionError):
    """Duplicate (i, j) supplied to ``build`` with a NULL ``dup``.

    Section IX: ``dup`` became optional in 2.0; passing ``GrB_NULL``
    means "duplicates are a program error", reported as an *execution*
    error (so it may be deferred in nonblocking mode).
    """

    info = Info.INVALID_VALUE


class NoValue(Exception):
    """Pythonic rendering of the informational ``GrB_NO_VALUE`` code.

    Raised by ``extractElement`` on a missing element when the caller used
    the exception-style API; the C-style wrappers translate it into the
    ``Info.NO_VALUE`` return instead.  It is *not* a GraphBLASError.
    """

    info = Info.NO_VALUE


_API_BY_INFO = {
    Info.UNINITIALIZED_OBJECT: UninitializedObjectError,
    Info.NULL_POINTER: NullPointerError,
    Info.INVALID_VALUE: InvalidValueError,
    Info.INVALID_INDEX: InvalidIndexError,
    Info.DOMAIN_MISMATCH: DomainMismatchError,
    Info.DIMENSION_MISMATCH: DimensionMismatchError,
    Info.OUTPUT_NOT_EMPTY: OutputNotEmptyError,
    Info.NOT_IMPLEMENTED: NotImplementedGrBError,
}

_EXEC_BY_INFO = {
    Info.PANIC: PanicError,
    Info.OUT_OF_MEMORY: OutOfMemoryError,
    Info.INSUFFICIENT_SPACE: InsufficientSpaceError,
    Info.INVALID_OBJECT: InvalidObjectError,
    Info.INDEX_OUT_OF_BOUNDS: IndexOutOfBoundsError,
    Info.EMPTY_OBJECT: EmptyObjectError,
    Info.TIMEOUT: TimeoutExpiredError,
    # INVALID_VALUE doubles as an execution-error code in §IX: build
    # with a NULL ``dup`` reports duplicates as a (deferrable)
    # DuplicateIndexError carrying GrB_INVALID_VALUE.
    Info.INVALID_VALUE: DuplicateIndexError,
}


def api_error_for(info: Info, message: str = "") -> ApiError:
    """Instantiate the API-error subclass for *info*."""
    try:
        return _API_BY_INFO[info](message)
    except KeyError:
        raise ValueError(f"{info!r} is not an API error code") from None


def execution_error_for(info: Info, message: str = "") -> ExecutionError:
    """Instantiate the execution-error subclass for *info*."""
    try:
        return _EXEC_BY_INFO[info](message)
    except KeyError:
        raise ValueError(f"{info!r} is not an execution error code") from None

"""``GrB_Semiring`` — ⟨add monoid, multiply operator⟩ pairs.

A semiring supplies the two operations of matrix multiplication:
``C(i,j) = ⊕_k A(i,k) ⊗ B(k,j)``.  The multiply operator's output domain
must match the monoid's domain (the spec's construction rule, enforced
here as a DOMAIN_MISMATCH API error).

Predefined semirings follow the spec's ``GrB_<ADD>_<MULT>_SEMIRING_<T>``
family: PLUS_TIMES, MIN_PLUS, MAX_PLUS, MIN_TIMES, MAX_TIMES, MIN_FIRST,
MIN_SECOND, MAX_FIRST, MAX_SECOND, MIN_MAX, MAX_MIN over the numeric
domains, plus the four boolean semirings LOR_LAND, LAND_LOR, LXOR_LAND,
LXNOR_LOR.
"""

from __future__ import annotations

from . import binaryop as _b
from . import monoid as _m
from . import types as _t
from .binaryop import BinaryOp
from .errors import DomainMismatchError, NullPointerError
from .monoid import Monoid
from .opbase import TypedOpFamily
from .types import Type

__all__ = [
    "Semiring",
    "PLUS_TIMES_SEMIRING", "MIN_PLUS_SEMIRING", "MAX_PLUS_SEMIRING",
    "MIN_TIMES_SEMIRING", "MAX_TIMES_SEMIRING",
    "MIN_FIRST_SEMIRING", "MIN_SECOND_SEMIRING",
    "MAX_FIRST_SEMIRING", "MAX_SECOND_SEMIRING",
    "MIN_MAX_SEMIRING", "MAX_MIN_SEMIRING",
    "PLUS_MIN_SEMIRING", "PLUS_FIRST_SEMIRING", "PLUS_SECOND_SEMIRING",
    "LOR_LAND_SEMIRING_BOOL", "LAND_LOR_SEMIRING_BOOL",
    "LXOR_LAND_SEMIRING_BOOL", "LXNOR_LOR_SEMIRING_BOOL",
    "PREDEFINED_SEMIRINGS",
]


class Semiring:
    """A monomorphic semiring ⟨⊕ monoid, ⊗ binary op⟩."""

    __slots__ = ("name", "add", "mult", "is_builtin")

    def __init__(self, name: str, add: Monoid, mult: BinaryOp, *, is_builtin: bool = False):
        if add.type != mult.out_type:
            raise DomainMismatchError(
                f"semiring: monoid domain {add.type.name} != multiply output "
                f"domain {mult.out_type.name}"
            )
        self.name = name
        self.add = add
        self.mult = mult
        self.is_builtin = is_builtin

    @classmethod
    def new(cls, add: Monoid, mult: BinaryOp, name: str = "") -> "Semiring":
        """``GrB_Semiring_new``."""
        if add is None or mult is None:
            raise NullPointerError("semiring components are NULL")
        return cls(name or f"semiring<{add.name},{mult.name}>", add, mult)

    @property
    def out_type(self) -> Type:
        return self.add.type

    @property
    def in1_type(self) -> Type:
        return self.mult.in1_type

    @property
    def in2_type(self) -> Type:
        return self.mult.in2_type

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


def _semiring_family(
    add_name: str, mult_name: str,
    add_family: TypedOpFamily, mult_family: TypedOpFamily,
    domains: tuple[Type, ...],
) -> TypedOpFamily:
    by_type = {}
    for t in domains:
        s = Semiring(
            f"GrB_{add_name}_{mult_name}_SEMIRING_{_t.suffix_of(t)}",
            add_family[t],
            mult_family[t],
            is_builtin=True,
        )
        by_type[t] = s
        globals()[f"{add_name}_{mult_name}_SEMIRING_{_t.suffix_of(t)}"] = s
        __all__.append(f"{add_name}_{mult_name}_SEMIRING_{_t.suffix_of(t)}")
    return TypedOpFamily(f"{add_name}_{mult_name}_SEMIRING", by_type)


_N = _t.NUMERIC_TYPES

PLUS_TIMES_SEMIRING = _semiring_family("PLUS", "TIMES", _m.PLUS_MONOID, _b.TIMES, _N)
MIN_PLUS_SEMIRING = _semiring_family("MIN", "PLUS", _m.MIN_MONOID, _b.PLUS, _N)
MAX_PLUS_SEMIRING = _semiring_family("MAX", "PLUS", _m.MAX_MONOID, _b.PLUS, _N)
MIN_TIMES_SEMIRING = _semiring_family("MIN", "TIMES", _m.MIN_MONOID, _b.TIMES, _N)
MAX_TIMES_SEMIRING = _semiring_family("MAX", "TIMES", _m.MAX_MONOID, _b.TIMES, _N)
MIN_FIRST_SEMIRING = _semiring_family("MIN", "FIRST", _m.MIN_MONOID, _b.FIRST, _N)
MIN_SECOND_SEMIRING = _semiring_family("MIN", "SECOND", _m.MIN_MONOID, _b.SECOND, _N)
MAX_FIRST_SEMIRING = _semiring_family("MAX", "FIRST", _m.MAX_MONOID, _b.FIRST, _N)
MAX_SECOND_SEMIRING = _semiring_family("MAX", "SECOND", _m.MAX_MONOID, _b.SECOND, _N)
MIN_MAX_SEMIRING = _semiring_family("MIN", "MAX", _m.MIN_MONOID, _b.MAX, _N)
MAX_MIN_SEMIRING = _semiring_family("MAX", "MIN", _m.MAX_MONOID, _b.MIN, _N)
PLUS_MIN_SEMIRING = _semiring_family("PLUS", "MIN", _m.PLUS_MONOID, _b.MIN, _N)
PLUS_FIRST_SEMIRING = _semiring_family("PLUS", "FIRST", _m.PLUS_MONOID, _b.FIRST, _N)
PLUS_SECOND_SEMIRING = _semiring_family("PLUS", "SECOND", _m.PLUS_MONOID, _b.SECOND, _N)

LOR_LAND_SEMIRING_BOOL = Semiring(
    "GrB_LOR_LAND_SEMIRING_BOOL", _m.LOR_MONOID_BOOL, _b.LAND[_t.BOOL],
    is_builtin=True,
)
LAND_LOR_SEMIRING_BOOL = Semiring(
    "GrB_LAND_LOR_SEMIRING_BOOL", _m.LAND_MONOID_BOOL, _b.LOR[_t.BOOL],
    is_builtin=True,
)
LXOR_LAND_SEMIRING_BOOL = Semiring(
    "GrB_LXOR_LAND_SEMIRING_BOOL", _m.LXOR_MONOID_BOOL, _b.LAND[_t.BOOL],
    is_builtin=True,
)
LXNOR_LOR_SEMIRING_BOOL = Semiring(
    "GrB_LXNOR_LOR_SEMIRING_BOOL", _m.LXNOR_MONOID_BOOL, _b.LOR[_t.BOOL],
    is_builtin=True,
)

PREDEFINED_SEMIRINGS = {
    "PLUS_TIMES": PLUS_TIMES_SEMIRING,
    "MIN_PLUS": MIN_PLUS_SEMIRING,
    "MAX_PLUS": MAX_PLUS_SEMIRING,
    "MIN_TIMES": MIN_TIMES_SEMIRING,
    "MAX_TIMES": MAX_TIMES_SEMIRING,
    "MIN_FIRST": MIN_FIRST_SEMIRING,
    "MIN_SECOND": MIN_SECOND_SEMIRING,
    "MAX_FIRST": MAX_FIRST_SEMIRING,
    "MAX_SECOND": MAX_SECOND_SEMIRING,
    "MIN_MAX": MIN_MAX_SEMIRING,
    "MAX_MIN": MAX_MIN_SEMIRING,
    "PLUS_MIN": PLUS_MIN_SEMIRING,
    "PLUS_FIRST": PLUS_FIRST_SEMIRING,
    "PLUS_SECOND": PLUS_SECOND_SEMIRING,
}

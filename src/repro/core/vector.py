"""``GrB_Vector`` — the opaque sparse vector object.

Wraps a :class:`~repro.internals.containers.VecData` carrier behind the
sequence/completion machinery.  Constructors accept the optional
``GrB_Context`` argument introduced in 2.0 (§IV, Fig. 2):

    ``GrB_Vector_new(&v, type, nsize, ctx)``

Value-reading methods (``nvals``, ``extractElement``, ``extractTuples``
and export) force the sequence; mutating methods go through it.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from ..internals.build import build_vector
from ..internals.containers import VecData, empty_vec, insert_value
from .binaryop import BinaryOp
from .context import Context
from .errors import (
    InvalidIndexError,
    InvalidValueError,
    NoValue,
    NullPointerError,
)
from .scalar import Scalar
from .sequence import OpaqueObject
from .types import Type

__all__ = ["Vector"]

_INT = np.int64


class Vector(OpaqueObject):
    """An opaque sparse vector of a fixed domain and size."""

    __slots__ = ("_type", "_size")

    def __init__(self, t: Type, size: int, ctx: Context | None = None):
        if t is None:
            raise NullPointerError("vector type is NULL")
        if size < 0:
            raise InvalidValueError(f"vector size must be >= 0, got {size}")
        super().__init__(ctx)
        self._type = t
        self._size = int(size)
        self._data = empty_vec(self._size, t)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def new(cls, t: Type, size: int, ctx: Context | None = None) -> "Vector":
        """``GrB_Vector_new(&v, d, nsize, ctx)`` (Fig. 2 signature)."""
        return cls(t, size, ctx)

    def dup(self) -> "Vector":
        """``GrB_Vector_dup`` — deep-copy semantics (carriers immutable)."""
        data = self._capture()
        out = Vector(self._type, self._size, self._ctx)
        out._data = data
        return out

    @classmethod
    def from_data(cls, data: VecData, ctx: Context | None = None) -> "Vector":
        """Internal/advanced: wrap an existing carrier (no copy)."""
        out = cls(data.type, data.size, ctx)
        out._data = data
        return out

    # -- shape / pattern --------------------------------------------------------

    @property
    def type(self) -> Type:
        return self._type

    @property
    def size(self) -> int:
        """``GrB_Vector_size``."""
        return self._size

    def nvals(self) -> int:
        """``GrB_Vector_nvals`` (forces the sequence)."""
        return self._capture().nvals

    # -- element access -----------------------------------------------------------

    def build(
        self,
        indices: Iterable[int],
        values: Iterable[Any],
        dup: BinaryOp | None = None,
    ) -> None:
        """``GrB_Vector_build`` with the §IX optional-``dup`` rule.

        ``dup=None`` (``GrB_NULL``) makes duplicate indices an execution
        error — deferred in nonblocking mode, so it surfaces at
        ``wait``/first read, which the error-model tests exercise.
        """
        if self.nvals() != 0:
            from .errors import OutputNotEmptyError
            raise OutputNotEmptyError("build requires an empty vector")
        idx = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices)
        vals = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if idx.size != vals.size:
            raise InvalidValueError("indices/values length mismatch")
        size, t = self._size, self._type
        self._submit(
            lambda _d: build_vector(size, t, idx, vals, dup),
            "Vector_build",
        )

    def set_element(self, value: Any, index: int) -> None:
        """``GrB_Vector_setElement`` (plain value or ``GrB_Scalar``)."""
        index = int(index)
        if not (0 <= index < self._size):
            raise InvalidIndexError(f"index {index} out of range [0, {self._size})")
        if isinstance(value, Scalar):
            src = value._capture()
            if not src.present:
                self.remove_element(index)
                return
            value = src.value
        coerced = self._type.coerce_scalar(value)
        t = self._type

        def thunk(d: VecData) -> VecData:
            pos = int(np.searchsorted(d.indices, index))
            if pos < d.nvals and d.indices[pos] == index:
                vals = d.values.copy()
                vals[pos] = coerced
                return VecData(d.size, t, d.indices, vals)
            new_idx = np.insert(d.indices, pos, index).astype(_INT)
            new_vals = insert_value(d.values, pos, coerced, t)
            return VecData(d.size, t, new_idx, new_vals)

        self._submit(thunk, "Vector_setElement", can_raise=False)

    def remove_element(self, index: int) -> None:
        """``GrB_Vector_removeElement``."""
        index = int(index)
        if not (0 <= index < self._size):
            raise InvalidIndexError(f"index {index} out of range [0, {self._size})")
        t = self._type

        def thunk(d: VecData) -> VecData:
            pos = int(np.searchsorted(d.indices, index))
            if pos < d.nvals and d.indices[pos] == index:
                return VecData(
                    d.size, t,
                    np.delete(d.indices, pos), np.delete(d.values, pos),
                )
            return d

        self._submit(thunk, "Vector_removeElement", can_raise=False)

    def extract_element(self, index: int, out: Scalar | None = None):
        """``GrB_Vector_extractElement``.

        Typed form (``out=None``): returns the value or raises
        :class:`NoValue`.  ``GrB_Scalar`` form (Table II): stores into
        ``out`` (empty when the element does not exist) and returns it —
        this variant never needs an immediate NO_VALUE test.
        """
        index = int(index)
        if not (0 <= index < self._size):
            raise InvalidIndexError(f"index {index} out of range [0, {self._size})")
        d = self._capture()
        pos = int(np.searchsorted(d.indices, index))
        present = pos < d.nvals and d.indices[pos] == index
        if out is not None:
            out._store_kernel_result(d.values[pos] if present else None)
            return out
        if not present:
            raise NoValue(f"no element at index {index}")
        return d.values[pos]

    def extract_tuples(self) -> tuple[np.ndarray, np.ndarray]:
        """``GrB_Vector_extractTuples`` — (indices, values) copies."""
        d = self._capture()
        return d.indices.copy(), d.values.copy()

    def clear(self) -> None:
        """``GrB_Vector_clear``."""
        size, t = self._size, self._type
        self._submit(lambda _d: empty_vec(size, t), "Vector_clear",
                     can_raise=False)

    def resize(self, new_size: int) -> None:
        """``GrB_Vector_resize`` — shrink drops out-of-range elements."""
        new_size = int(new_size)
        if new_size < 0:
            raise InvalidValueError("size must be >= 0")
        t = self._type

        def thunk(d: VecData) -> VecData:
            keep = d.indices < new_size
            return VecData(new_size, t, d.indices[keep], d.values[keep])

        self._submit(thunk, "Vector_resize", can_raise=False)
        self._size = new_size

    # -- pythonic conveniences (not part of the C surface) -------------------

    def to_dict(self) -> dict[int, Any]:
        d = self._capture()
        return {int(i): v for i, v in zip(d.indices, d.values)}

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            if not self._valid:
                return "Vector(<freed>)"
            state = ("<pending>" if self._tail is not None
                     else f"nvals={self._data.nvals}")
            return f"Vector({self._type.name}, size={self._size}, {state})"

"""``GrB_UnaryOp`` — unary operators, predefined and user-defined.

Predefined families (per the 2.0 specification):

========= ======================================= ==================
Family    Meaning                                 Domains
========= ======================================= ==================
IDENTITY  f(x) = x                                all 11
AINV      f(x) = -x (additive inverse)            all 11
MINV      f(x) = 1/x (multiplicative inverse)     all 11
LNOT      f(x) = ¬x (logical not)                 BOOL
ABS       f(x) = |x|                              all 11
BNOT      f(x) = ~x (bitwise complement)          integer domains
========= ======================================= ==================

Each typed instance is exported under its spec-style name
(``IDENTITY_INT32`` for ``GrB_IDENTITY_INT32``) and reachable
polymorphically (``IDENTITY[INT32]``).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from . import types as _t
from .errors import NullPointerError
from .opbase import TypedOpFamily, elementwise_fallback_1
from .types import Type

__all__ = ["UnaryOp", "IDENTITY", "AINV", "MINV", "LNOT", "ABS", "BNOT",
           "PREDEFINED_UNARY_FAMILIES"]


class UnaryOp:
    """A monomorphic unary operator: ``out = f(in)``."""

    __slots__ = ("name", "in_type", "out_type", "scalar", "vec", "is_builtin")

    def __init__(
        self,
        name: str,
        in_type: Type,
        out_type: Type,
        scalar: Callable[[Any], Any],
        vec: Callable[[np.ndarray], np.ndarray] | None = None,
        *,
        is_builtin: bool = False,
    ):
        self.name = name
        self.in_type = in_type
        self.out_type = out_type
        self.scalar = scalar
        self.vec = vec if vec is not None else elementwise_fallback_1(
            scalar, out_type.np_dtype
        )
        self.is_builtin = is_builtin

    @classmethod
    def new(
        cls,
        fn: Callable[[Any], Any],
        out_type: Type,
        in_type: Type,
        name: str = "",
    ) -> "UnaryOp":
        """``GrB_UnaryOp_new`` — wrap a user function.

        The function receives one scalar of ``in_type`` and must return a
        scalar of ``out_type``.  User-defined operators run one Python
        call per stored element (the function-pointer cost of §II).
        """
        if fn is None:
            raise NullPointerError("unary function is NULL")
        return cls(name or getattr(fn, "__name__", "udf"), in_type, out_type, fn)

    def apply_array(self, x: np.ndarray) -> np.ndarray:
        """Apply to a values array (already in ``in_type``'s dtype)."""
        return self.vec(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnaryOp({self.name}: {self.in_type.name} -> {self.out_type.name})"


def _family(
    name: str,
    domains: tuple[Type, ...],
    scalar_factory: Callable[[Type], Callable[[Any], Any]],
    vec_factory: Callable[[Type], Callable[[np.ndarray], np.ndarray]],
    out_rule: Callable[[Type], Type] = lambda t: t,
) -> TypedOpFamily:
    by_type = {}
    for t in domains:
        out_t = out_rule(t)
        op = UnaryOp(
            f"GrB_{name}_{_t.suffix_of(t)}",
            t,
            out_t,
            scalar_factory(t),
            vec_factory(t),
            is_builtin=True,
        )
        by_type[t] = op
        globals()[f"{name}_{_t.suffix_of(t)}"] = op
        __all__.append(f"{name}_{_t.suffix_of(t)}")
    return TypedOpFamily(name, by_type)


def _cast_out(t: Type, arr: np.ndarray) -> np.ndarray:
    if arr.dtype != t.np_dtype:
        return arr.astype(t.np_dtype)
    return arr


def _minv_vec(t: Type):
    if t.is_bool:
        # 1/x over booleans: MINV(true)=true, MINV(false) divides by zero;
        # spec maps bool through the 0/1 embedding, so MINV(false) is
        # implementation-defined; we return true (1/0 saturates to 1≠0).
        return lambda x: np.ones_like(x, dtype=np.bool_)
    if t.is_integer:
        def f(x, _dt=t.np_dtype):
            with np.errstate(divide="ignore", invalid="ignore"):
                out = np.where(x == 0, 0, 1 // np.where(x == 0, 1, x))
            return out.astype(_dt)
        return f
    def f(x, _dt=t.np_dtype):
        with np.errstate(divide="ignore", invalid="ignore"):
            return _cast_out(t, np.divide(1.0, x.astype(np.float64)).astype(_dt))
    return f


def _minv_scalar(t: Type):
    if t.is_bool:
        return lambda x: True
    if t.is_integer:
        def f(x, _np=t.np_dtype.type):
            return _np(0) if x == 0 else _np(1 // int(x))
        return f
    return lambda x, _np=t.np_dtype.type: _np(np.inf) if x == 0 else _np(1.0 / x)


def _ainv_vec(t: Type):
    if t.is_bool:
        return lambda x: x.copy()
    if t.np_dtype.kind == "u":
        # Unsigned negation wraps modulo 2^w (C semantics).
        return lambda x, _dt=t.np_dtype: (-x.astype(_dt)).astype(_dt)
    return lambda x: -x


def _ainv_scalar(t: Type):
    if t.is_bool:
        return lambda x: bool(x)
    return lambda x, _np=t.np_dtype.type: _np(-_np(x))


def _abs_vec(t: Type):
    if t.is_bool:
        return lambda x: x.copy()
    return np.abs


IDENTITY = _family(
    "IDENTITY",
    _t.PREDEFINED_TYPES,
    lambda t: (lambda x, _np=t.np_dtype.type: _np(x)),
    lambda t: (lambda x: x.copy()),
)

AINV = _family("AINV", _t.PREDEFINED_TYPES, _ainv_scalar, _ainv_vec)

MINV = _family("MINV", _t.PREDEFINED_TYPES, _minv_scalar, _minv_vec)

LNOT = _family(
    "LNOT",
    (_t.BOOL,),
    lambda t: (lambda x: not bool(x)),
    lambda t: np.logical_not,
)

ABS = _family(
    "ABS",
    _t.PREDEFINED_TYPES,
    lambda t: (lambda x, _np=t.np_dtype.type: _np(abs(x)) if not t.is_bool else bool(x)),
    _abs_vec,
)

BNOT = _family(
    "BNOT",
    _t.INTEGER_TYPES,
    lambda t: (lambda x, _np=t.np_dtype.type: _np(~_np(x))),
    lambda t: np.invert,
)

PREDEFINED_UNARY_FAMILIES = {
    "IDENTITY": IDENTITY,
    "AINV": AINV,
    "MINV": MINV,
    "LNOT": LNOT,
    "ABS": ABS,
    "BNOT": BNOT,
}

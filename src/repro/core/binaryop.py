"""``GrB_BinaryOp`` — binary operators, predefined and user-defined.

Predefined families per the 2.0 specification:

* value-selecting: ``FIRST`` (x), ``SECOND`` (y), ``ONEB`` (1)
* arithmetic: ``MIN MAX PLUS MINUS TIMES DIV`` over the 11 domains
* comparison (output BOOL): ``EQ NE GT LT GE LE``
* logical (BOOL only): ``LOR LAND LXOR LXNOR``
* bitwise (integer domains): ``BOR BAND BXOR BXNOR``

Typed instances carry a vectorized implementation and, where one exists,
the backing NumPy ufunc (used by monoids for ``reduceat`` segment
reductions — the fast path of the ESC SpGEMM kernel).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from . import types as _t
from .errors import NullPointerError
from .opbase import TypedOpFamily, elementwise_fallback_2
from .types import Type

__all__ = [
    "BinaryOp",
    "FIRST", "SECOND", "ONEB",
    "MIN", "MAX", "PLUS", "MINUS", "TIMES", "DIV",
    "EQ", "NE", "GT", "LT", "GE", "LE",
    "LOR", "LAND", "LXOR", "LXNOR",
    "BOR", "BAND", "BXOR", "BXNOR",
    "PREDEFINED_BINARY_FAMILIES",
]


class BinaryOp:
    """A monomorphic binary operator: ``out = f(in1, in2)``."""

    __slots__ = (
        "name", "in1_type", "in2_type", "out_type",
        "scalar", "vec", "ufunc", "is_builtin", "commutative",
    )

    def __init__(
        self,
        name: str,
        in1_type: Type,
        in2_type: Type,
        out_type: Type,
        scalar: Callable[[Any, Any], Any],
        vec: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
        *,
        ufunc: np.ufunc | None = None,
        is_builtin: bool = False,
        commutative: bool = False,
    ):
        self.name = name
        self.in1_type = in1_type
        self.in2_type = in2_type
        self.out_type = out_type
        self.scalar = scalar
        self.vec = vec if vec is not None else elementwise_fallback_2(
            scalar, out_type.np_dtype
        )
        self.ufunc = ufunc
        self.is_builtin = is_builtin
        self.commutative = commutative

    @classmethod
    def new(
        cls,
        fn: Callable[[Any, Any], Any],
        out_type: Type,
        in1_type: Type,
        in2_type: Type,
        name: str = "",
    ) -> "BinaryOp":
        """``GrB_BinaryOp_new`` — wrap a user function.

        User-defined operators have no vectorized form: kernels call the
        Python function once per element pair (the §II penalty).
        """
        if fn is None:
            raise NullPointerError("binary function is NULL")
        return cls(
            name or getattr(fn, "__name__", "udf"),
            in1_type, in2_type, out_type, fn,
        )

    def apply_arrays(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Apply elementwise to aligned value arrays."""
        return self.vec(x, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BinaryOp({self.name}: ({self.in1_type.name}, "
            f"{self.in2_type.name}) -> {self.out_type.name})"
        )


# ---------------------------------------------------------------------------
# Predefined families
# ---------------------------------------------------------------------------

def _make_family(
    name: str,
    domains: tuple[Type, ...],
    scalar_factory: Callable[[Type], Callable[[Any, Any], Any]],
    vec_factory: Callable[[Type], Callable[[np.ndarray, np.ndarray], np.ndarray]],
    *,
    out_rule: Callable[[Type], Type] = lambda t: t,
    ufunc_factory: Callable[[Type], np.ufunc | None] = lambda t: None,
    commutative: bool = False,
) -> TypedOpFamily:
    by_type = {}
    for t in domains:
        op = BinaryOp(
            f"GrB_{name}_{_t.suffix_of(t)}",
            t, t, out_rule(t),
            scalar_factory(t),
            vec_factory(t),
            ufunc=ufunc_factory(t),
            is_builtin=True,
            commutative=commutative,
        )
        by_type[t] = op
        globals()[f"{name}_{_t.suffix_of(t)}"] = op
        __all__.append(f"{name}_{_t.suffix_of(t)}")
    return TypedOpFamily(name, by_type)


def _np_scalar(t: Type, fn: Callable[[Any, Any], Any]):
    np_type = t.np_dtype.type
    return lambda x, y: np_type(fn(x, y))


def _bool_and(t):
    return lambda x, y: bool(x) and bool(y)


def _safe_div_vec(t: Type):
    if t.is_bool:
        # BOOL DIV: x / y in the 0/1 embedding; define as FIRST.
        return lambda x, y: x.copy()
    if t.is_integer:
        def f(x, y, _dt=t.np_dtype):
            with np.errstate(divide="ignore", invalid="ignore"):
                safe_y = np.where(y == 0, 1, y)
                out = (x / safe_y).astype(_dt)
                return np.where(y == 0, 0, out).astype(_dt)
        return f
    def f(x, y, _dt=t.np_dtype):
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.divide(x, y).astype(_dt, copy=False)
    return f


def _safe_div_scalar(t: Type):
    np_type = t.np_dtype.type
    if t.is_bool:
        return lambda x, y: bool(x)
    if t.is_integer:
        def f(x, y):
            if y == 0:
                return np_type(0)
            return np_type(int(x) / int(y))
        return f
    def f(x, y):
        with np.errstate(divide="ignore", invalid="ignore"):
            return np_type(np.divide(np_type(x), np_type(y)))
    return f


def _wrap_arith(t: Type, ufunc: np.ufunc):
    """Vectorized op with C wraparound semantics for fixed-width ints."""
    dt = t.np_dtype
    if t.is_bool:
        # Arithmetic on BOOL follows the 0/1 embedding and saturates.
        if ufunc is np.add:
            return np.logical_or
        if ufunc is np.multiply:
            return np.logical_and
        if ufunc is np.subtract:
            return np.logical_xor
        return lambda x, y: ufunc(x, y).astype(np.bool_)
    def f(x, y, _u=ufunc, _dt=dt):
        with np.errstate(over="ignore", under="ignore", invalid="ignore"):
            return _u(x, y, dtype=_dt) if _u in (np.add, np.subtract, np.multiply) \
                else _u(x, y).astype(_dt, copy=False)
    return f


def _scalar_arith(t: Type, pyfn: Callable[[Any, Any], Any]):
    np_type = t.np_dtype.type
    if t.is_bool:
        table = {"+": lambda x, y: bool(x) or bool(y),
                 "-": lambda x, y: bool(x) != bool(y),
                 "*": lambda x, y: bool(x) and bool(y)}
        tag = getattr(pyfn, "_tag", None)
        if tag in table:
            return table[tag]
        return lambda x, y: bool(pyfn(x, y))
    def f(x, y):
        with np.errstate(over="ignore", under="ignore", invalid="ignore"):
            return np_type(pyfn(np_type(x), np_type(y)))
    return f


def _tagged(fn, tag):
    fn._tag = tag
    return fn


_ADD = _tagged(lambda x, y: x + y, "+")
_SUB = _tagged(lambda x, y: x - y, "-")
_MUL = _tagged(lambda x, y: x * y, "*")


FIRST = _make_family(
    "FIRST", _t.PREDEFINED_TYPES,
    lambda t: (lambda x, y, _np=t.np_dtype.type: _np(x)),
    lambda t: (lambda x, y: x.copy()),
)

SECOND = _make_family(
    "SECOND", _t.PREDEFINED_TYPES,
    lambda t: (lambda x, y, _np=t.np_dtype.type: _np(y)),
    lambda t: (lambda x, y: y.copy()),
)

ONEB = _make_family(
    "ONEB", _t.PREDEFINED_TYPES,
    lambda t: (lambda x, y, _np=t.np_dtype.type: _np(1)),
    lambda t: (lambda x, y, _dt=t.np_dtype: np.ones(len(x), dtype=_dt)),
    commutative=True,
)

MIN = _make_family(
    "MIN", _t.PREDEFINED_TYPES,
    lambda t: _np_scalar(t, min),
    lambda t: np.minimum,
    ufunc_factory=lambda t: np.minimum,
    commutative=True,
)

MAX = _make_family(
    "MAX", _t.PREDEFINED_TYPES,
    lambda t: _np_scalar(t, max),
    lambda t: np.maximum,
    ufunc_factory=lambda t: np.maximum,
    commutative=True,
)

PLUS = _make_family(
    "PLUS", _t.PREDEFINED_TYPES,
    lambda t: _scalar_arith(t, _ADD),
    lambda t: _wrap_arith(t, np.add),
    ufunc_factory=lambda t: np.logical_or if t.is_bool else np.add,
    commutative=True,
)

MINUS = _make_family(
    "MINUS", _t.PREDEFINED_TYPES,
    lambda t: _scalar_arith(t, _SUB),
    lambda t: _wrap_arith(t, np.subtract),
)

TIMES = _make_family(
    "TIMES", _t.PREDEFINED_TYPES,
    lambda t: _scalar_arith(t, _MUL),
    lambda t: _wrap_arith(t, np.multiply),
    ufunc_factory=lambda t: np.logical_and if t.is_bool else np.multiply,
    commutative=True,
)

DIV = _make_family(
    "DIV", _t.PREDEFINED_TYPES,
    _safe_div_scalar,
    _safe_div_vec,
)


def _cmp_family(name: str, pyop: Callable[[Any, Any], bool], npop) -> TypedOpFamily:
    return _make_family(
        name, _t.PREDEFINED_TYPES,
        lambda t: (lambda x, y: bool(pyop(x, y))),
        lambda t: npop,
        out_rule=lambda t: _t.BOOL,
        commutative=name in ("EQ", "NE"),
    )


EQ = _cmp_family("EQ", lambda x, y: x == y, np.equal)
NE = _cmp_family("NE", lambda x, y: x != y, np.not_equal)
GT = _cmp_family("GT", lambda x, y: x > y, np.greater)
LT = _cmp_family("LT", lambda x, y: x < y, np.less)
GE = _cmp_family("GE", lambda x, y: x >= y, np.greater_equal)
LE = _cmp_family("LE", lambda x, y: x <= y, np.less_equal)


LOR = _make_family(
    "LOR", (_t.BOOL,),
    lambda t: (lambda x, y: bool(x) or bool(y)),
    lambda t: np.logical_or,
    ufunc_factory=lambda t: np.logical_or,
    commutative=True,
)

LAND = _make_family(
    "LAND", (_t.BOOL,),
    lambda t: (lambda x, y: bool(x) and bool(y)),
    lambda t: np.logical_and,
    ufunc_factory=lambda t: np.logical_and,
    commutative=True,
)

LXOR = _make_family(
    "LXOR", (_t.BOOL,),
    lambda t: (lambda x, y: bool(x) != bool(y)),
    lambda t: np.logical_xor,
    ufunc_factory=lambda t: np.logical_xor,
    commutative=True,
)

LXNOR = _make_family(
    "LXNOR", (_t.BOOL,),
    lambda t: (lambda x, y: bool(x) == bool(y)),
    lambda t: (lambda x, y: np.logical_not(np.logical_xor(x, y))),
    ufunc_factory=lambda t: np.equal,
    commutative=True,
)


BOR = _make_family(
    "BOR", _t.INTEGER_TYPES,
    lambda t: _np_scalar(t, lambda x, y: int(x) | int(y)),
    lambda t: np.bitwise_or,
    ufunc_factory=lambda t: np.bitwise_or,
    commutative=True,
)

BAND = _make_family(
    "BAND", _t.INTEGER_TYPES,
    lambda t: _np_scalar(t, lambda x, y: int(x) & int(y)),
    lambda t: np.bitwise_and,
    ufunc_factory=lambda t: np.bitwise_and,
    commutative=True,
)

BXOR = _make_family(
    "BXOR", _t.INTEGER_TYPES,
    lambda t: _np_scalar(t, lambda x, y: int(x) ^ int(y)),
    lambda t: np.bitwise_xor,
    ufunc_factory=lambda t: np.bitwise_xor,
    commutative=True,
)

BXNOR = _make_family(
    "BXNOR", _t.INTEGER_TYPES,
    lambda t: _np_scalar(t, lambda x, y: ~(int(x) ^ int(y))),
    lambda t: (lambda x, y: np.invert(np.bitwise_xor(x, y))),
    commutative=True,
)


PREDEFINED_BINARY_FAMILIES = {
    "FIRST": FIRST, "SECOND": SECOND, "ONEB": ONEB,
    "MIN": MIN, "MAX": MAX, "PLUS": PLUS, "MINUS": MINUS,
    "TIMES": TIMES, "DIV": DIV,
    "EQ": EQ, "NE": NE, "GT": GT, "LT": LT, "GE": GE, "LE": LE,
    "LOR": LOR, "LAND": LAND, "LXOR": LXOR, "LXNOR": LXNOR,
    "BOR": BOR, "BAND": BAND, "BXOR": BXOR, "BXNOR": BXNOR,
}

"""``GrB_IndexUnaryOp`` — operators over (value, indices, scalar) (§VIII-A).

GraphBLAS 2.0 lets a few key operations see the *location* of each stored
element, not just its value.  An index-unary operator computes

    out = f(a_ij, i, j, s)        (matrices)
    out = f(u_i,  i, 0, s)        (vectors; the column index is 0)

where ``s`` is an extra scalar supplied through the ``apply``/``select``
call.  Table IV's predefined operators are provided with vectorized
implementations; user-defined operators (``IndexUnaryOp.new``) run one
Python call per stored element — exactly the function-pointer penalty the
paper's §II motivation describes for the 1.X workaround.

Predefined operators (Table IV):

=============== ============================================== =========
Operator        Meaning                                        Output
=============== ============================================== =========
ROWINDEX        i + s                                          INT32/64
COLINDEX        j + s                                          INT32/64
DIAGINDEX       j - i + s                                      INT32/64
TRIL            j <= i + s  (keep at/below diagonal s)         BOOL
TRIU            j >= i + s  (keep at/above diagonal s)         BOOL
DIAG            j == i + s  (keep diagonal s)                  BOOL
OFFDIAG         j != i + s  (remove diagonal s)                BOOL
ROWLE           i <= s      (keep rows up to s)                BOOL
ROWGT           i >  s      (keep rows after s)                BOOL
COLLE           j <= s                                         BOOL
COLGT           j >  s                                         BOOL
VALUEEQ/NE/...  compare stored value with s                    BOOL
=============== ============================================== =========
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from . import types as _t
from .errors import NullPointerError
from .opbase import TypedOpFamily
from .types import Type

__all__ = [
    "IndexUnaryOp",
    "ROWINDEX", "COLINDEX", "DIAGINDEX",
    "TRIL", "TRIU", "DIAG", "OFFDIAG",
    "ROWLE", "ROWGT", "COLLE", "COLGT",
    "VALUEEQ", "VALUENE", "VALUELT", "VALUELE", "VALUEGT", "VALUEGE",
    "PREDEFINED_INDEXUNARY",
]


class IndexUnaryOp:
    """A monomorphic index-unary operator ``out = f(value, i, j, s)``.

    ``in_type is None`` means the operator ignores the stored value and
    applies to containers of any domain (the positional operators of
    Table IV: TRIL, ROWINDEX, ...).
    """

    __slots__ = (
        "name", "in_type", "out_type", "s_type",
        "scalar", "vec", "is_builtin", "uses_value", "uses_column",
    )

    def __init__(
        self,
        name: str,
        in_type: Type | None,
        out_type: Type,
        s_type: Type,
        scalar: Callable[[Any, int, int, Any], Any],
        vec: Callable[[np.ndarray, np.ndarray, np.ndarray, Any], np.ndarray] | None = None,
        *,
        is_builtin: bool = False,
        uses_value: bool = True,
        uses_column: bool = True,
    ):
        self.name = name
        self.in_type = in_type
        self.out_type = out_type
        self.s_type = s_type
        self.scalar = scalar
        self.vec = vec if vec is not None else self._fallback(scalar, out_type)
        self.is_builtin = is_builtin
        self.uses_value = uses_value
        self.uses_column = uses_column

    @staticmethod
    def _fallback(scalar_fn, out_type: Type):
        def apply(values: np.ndarray, rows: np.ndarray, cols: np.ndarray, s: Any):
            n = len(values)
            out = np.empty(n, dtype=object)
            for k in range(n):
                out[k] = scalar_fn(values[k], int(rows[k]), int(cols[k]), s)
            if out_type.np_dtype != object:
                out = out.astype(out_type.np_dtype)
            return out
        return apply

    @classmethod
    def new(
        cls,
        fn: Callable[[Any, int, int, Any], Any],
        out_type: Type,
        in_type: Type,
        s_type: Type,
        name: str = "",
    ) -> "IndexUnaryOp":
        """``GrB_IndexUnaryOp_new`` (§VIII-A).

        ``fn(value, i, j, s)`` receives the stored value, its row and
        column indices (column 0 for vectors), and the user scalar ``s``;
        it returns a value in ``out_type``.
        """
        if fn is None:
            raise NullPointerError("index unary function is NULL")
        return cls(
            name or getattr(fn, "__name__", "udf"),
            in_type, out_type, s_type, fn,
        )

    def apply_arrays(
        self, values: np.ndarray, rows: np.ndarray, cols: np.ndarray, s: Any
    ) -> np.ndarray:
        """Apply to parallel (values, rows, cols) arrays."""
        return self.vec(values, rows, cols, s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dom = self.in_type.name if self.in_type is not None else "<any>"
        return f"IndexUnaryOp({self.name}: {dom} -> {self.out_type.name})"


# ---------------------------------------------------------------------------
# Positional index operators (ROWINDEX / COLINDEX / DIAGINDEX)
# ---------------------------------------------------------------------------

def _index_family(name: str, expr_vec, expr_scalar) -> TypedOpFamily:
    by_type = {}
    for t in (_t.INT32, _t.INT64):
        op = IndexUnaryOp(
            f"GrB_{name}_{_t.suffix_of(t)}",
            None, t, t,
            expr_scalar(t),
            _wrap_index_vec(expr_vec, t),
            is_builtin=True,
            uses_value=False,
            uses_column=(name != "ROWINDEX"),
        )
        by_type[t] = op
        globals()[f"{name}_{_t.suffix_of(t)}"] = op
        __all__.append(f"{name}_{_t.suffix_of(t)}")
    return TypedOpFamily(name, by_type)


def _wrap_index_vec(expr, t: Type):
    def apply(values, rows, cols, s, _dt=t.np_dtype):
        return expr(rows, cols, s).astype(_dt, copy=False)
    return apply


ROWINDEX = _index_family(
    "ROWINDEX",
    lambda i, j, s: i + int(s),
    lambda t: (lambda v, i, j, s, _np=t.np_dtype.type: _np(i + int(s))),
)

COLINDEX = _index_family(
    "COLINDEX",
    lambda i, j, s: j + int(s),
    lambda t: (lambda v, i, j, s, _np=t.np_dtype.type: _np(j + int(s))),
)

DIAGINDEX = _index_family(
    "DIAGINDEX",
    lambda i, j, s: j - i + int(s),
    lambda t: (lambda v, i, j, s, _np=t.np_dtype.type: _np(j - i + int(s))),
)


# ---------------------------------------------------------------------------
# Positional selectors (TRIL / TRIU / DIAG / OFFDIAG / ROWLE / ...)
# ---------------------------------------------------------------------------

def _positional_bool(name: str, expr_vec, expr_scalar, *, uses_column: bool) -> IndexUnaryOp:
    op = IndexUnaryOp(
        f"GrB_{name}",
        None, _t.BOOL, _t.INT64,
        expr_scalar,
        lambda values, rows, cols, s: expr_vec(rows, cols, int(s)),
        is_builtin=True,
        uses_value=False,
        uses_column=uses_column,
    )
    return op


TRIL = _positional_bool(
    "TRIL",
    lambda i, j, s: j <= i + s,
    lambda v, i, j, s: j <= i + int(s),
    uses_column=True,
)

TRIU = _positional_bool(
    "TRIU",
    lambda i, j, s: j >= i + s,
    lambda v, i, j, s: j >= i + int(s),
    uses_column=True,
)

DIAG = _positional_bool(
    "DIAG",
    lambda i, j, s: j == i + s,
    lambda v, i, j, s: j == i + int(s),
    uses_column=True,
)

OFFDIAG = _positional_bool(
    "OFFDIAG",
    lambda i, j, s: j != i + s,
    lambda v, i, j, s: j != i + int(s),
    uses_column=True,
)

ROWLE = _positional_bool(
    "ROWLE",
    lambda i, j, s: i <= s,
    lambda v, i, j, s: i <= int(s),
    uses_column=False,
)

ROWGT = _positional_bool(
    "ROWGT",
    lambda i, j, s: i > s,
    lambda v, i, j, s: i > int(s),
    uses_column=False,
)

COLLE = _positional_bool(
    "COLLE",
    lambda i, j, s: j <= s,
    lambda v, i, j, s: j <= int(s),
    uses_column=True,
)

COLGT = _positional_bool(
    "COLGT",
    lambda i, j, s: j > s,
    lambda v, i, j, s: j > int(s),
    uses_column=True,
)


# ---------------------------------------------------------------------------
# Value comparators (VALUEEQ .. VALUEGE)
# ---------------------------------------------------------------------------

def _value_family(name: str, npop, pyop) -> TypedOpFamily:
    by_type = {}
    for t in _t.PREDEFINED_TYPES:
        op = IndexUnaryOp(
            f"GrB_{name}_{_t.suffix_of(t)}",
            t, _t.BOOL, t,
            (lambda v, i, j, s, _op=pyop: bool(_op(v, s))),
            (lambda values, rows, cols, s, _op=npop: _op(values, s)),
            is_builtin=True,
            uses_value=True,
            uses_column=False,
        )
        by_type[t] = op
        globals()[f"{name}_{_t.suffix_of(t)}"] = op
        __all__.append(f"{name}_{_t.suffix_of(t)}")
    return TypedOpFamily(name, by_type)


VALUEEQ = _value_family("VALUEEQ", np.equal, lambda a, b: a == b)
VALUENE = _value_family("VALUENE", np.not_equal, lambda a, b: a != b)
VALUELT = _value_family("VALUELT", np.less, lambda a, b: a < b)
VALUELE = _value_family("VALUELE", np.less_equal, lambda a, b: a <= b)
VALUEGT = _value_family("VALUEGT", np.greater, lambda a, b: a > b)
VALUEGE = _value_family("VALUEGE", np.greater_equal, lambda a, b: a >= b)


PREDEFINED_INDEXUNARY = {
    "ROWINDEX": ROWINDEX, "COLINDEX": COLINDEX, "DIAGINDEX": DIAGINDEX,
    "TRIL": TRIL, "TRIU": TRIU, "DIAG": DIAG, "OFFDIAG": OFFDIAG,
    "ROWLE": ROWLE, "ROWGT": ROWGT, "COLLE": COLLE, "COLGT": COLGT,
    "VALUEEQ": VALUEEQ, "VALUENE": VALUENE, "VALUELT": VALUELT,
    "VALUELE": VALUELE, "VALUEGT": VALUEGT, "VALUEGE": VALUEGE,
}

"""Bounded retry with exponential backoff for transient faults.

Kernels in this codebase are pure functions over immutable carriers —
they allocate fresh outputs and never mutate their inputs — so
re-running one after a transient failure (simulated resource pressure,
a flaky worker) is always safe.  :func:`with_retry` is the single
retry loop used by both execution funnels (blocking ``_run_now`` and
the nonblocking scheduler) and by the communicator guards.

Policy (configurable via :mod:`repro.internals.config`):

* ``RETRY_MAX`` attempts *after* the first (default 3),
* sleep ``RETRY_BASE_DELAY * 2**attempt`` between attempts,
* only :func:`repro.faults.plane.is_transient` errors are retried —
  persistent faults propagate immediately so the §V deferral machinery
  records them.

The body runs inside an :class:`~repro.faults.plane.armed` scope, which
is what lets armed-only chaos mode target exactly the code paths this
loop protects.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

from ..core.errors import ExecutionError, TimeoutExpiredError
from ..engine.stats import STATS
from ..internals import config
from .plane import armed, is_transient

__all__ = ["with_retry", "guard"]

T = TypeVar("T")


def with_retry(fn: Callable[[], T], label: str = "") -> T:
    """Run *fn*, retrying transient :class:`ExecutionError` failures
    with exponential backoff.  Non-transient errors, and transient ones
    past the retry budget, propagate to the caller."""
    attempt = 0
    while True:
        try:
            with armed():
                result = fn()
        except TimeoutExpiredError:
            # Transient *to the caller* (a fresh deadline may succeed),
            # but never retried internally: the deadline that expired
            # stays expired, and every backoff sleep would burn wall
            # clock the cancelled query no longer has.
            raise
        except ExecutionError as exc:
            if not is_transient(exc):
                raise
            if attempt >= config.get_option("RETRY_MAX"):
                STATS.bump("retries_exhausted")
                raise
            time.sleep(config.get_option("RETRY_BASE_DELAY") * (2 ** attempt))
            attempt += 1
            STATS.bump("retries")
            continue
        if attempt:
            STATS.bump("retries_recovered")
        return result


def guard(site: str, **ctx) -> None:
    """Visit an injection site inside the retry envelope: transient
    faults are absorbed (retried until the budget runs out), persistent
    ones propagate.  The communicator's per-call protection."""
    from .plane import maybe_inject

    with_retry(lambda: maybe_inject(site, **ctx), site)

"""Registry of known fault-injection site names.

Purely documentary — :func:`repro.faults.plane.maybe_inject` accepts
any string — but keeping the canonical list in one place lets tests
assert coverage and lets the CLI/docs enumerate what a fault schedule
can target.  Site names are hierarchical (``layer.point``) so fnmatch
patterns like ``kernel.*`` or ``comm.*`` select a whole layer.
"""

from __future__ import annotations

#: site name -> (layer, description)
SITES: dict[str, tuple[str, str]] = {
    # -- kernel boundaries (internals/*) -----------------------------------
    "kernel.mxm": ("kernel", "SpGEMM entry (internals/mxm.mxm)"),
    "kernel.mxv": ("kernel", "SpMV entry (internals/mxm.mxv)"),
    "kernel.vxm": ("kernel", "vector-matrix entry (internals/mxm.vxm)"),
    "kernel.build": ("kernel", "tuple assembly (internals/build)"),
    "kernel.apply": ("kernel", "unary map kernels (internals/applyselect)"),
    "kernel.select": ("kernel", "filter kernels (internals/applyselect)"),
    "kernel.pipeline": ("kernel", "fused stage pipelines (internals/applyselect)"),
    "kernel.ewise": ("kernel", "eWise merge/intersect (internals/ewise)"),
    "kernel.reduce": ("kernel", "monoid reductions (internals/reduce)"),
    "kernel.extract": ("kernel", "sub-container extract (internals/extract)"),
    "kernel.assign": ("kernel", "sub-container assign (internals/assign)"),
    "kernel.kron": ("kernel", "Kronecker product (internals/kron)"),
    # -- planner pass boundaries (engine/passes/*) --------------------------
    "planner.normalize": ("planner", "stage canonicalization pass (engine/passes/normalize)"),
    "planner.cse": ("planner", "hash-cons CSE pass (engine/passes/cse)"),
    "planner.pushdown": ("planner", "mask pushdown pass (engine/passes/pushdown)"),
    "planner.fuse": ("planner", "fusion grouping pass (engine/passes/fuse)"),
    "planner.schedule": ("planner", "decision-commit pass (engine/passes/schedule)"),
    # -- engine (engine/*) --------------------------------------------------
    "txn.commit": ("engine", "transactional commit gate (engine/txn)"),
    "scheduler.worker": ("engine", "pool worker node failure (engine/scheduler)"),
    "scheduler.slow": ("engine", "straggling pool worker (kind='slow')"),
    "parallel.worker": ("engine", "row-block worker (internals/parallel)"),
    # -- durability plane (serve/recovery.py) -------------------------------
    # Crash-kill schedules (kind="crash") target these plus any of the
    # kernel/planner/engine boundaries above: a SimulatedCrash at the
    # site hard-terminates the service mid-operation, and the recovery
    # harness then proves restore() parity against an uncrashed oracle.
    "journal.append": ("durability", "WAL record framed + written (serve/recovery)"),
    "journal.commit": ("durability", "WAL record flushed/fsynced — the ack point"),
    "checkpoint.write": ("durability", "snapshot blob/manifest write (serve/recovery)"),
    "restore.replay": ("durability", "journal record replay during restore"),
    # -- warm-start store (store/store.py) ----------------------------------
    # Both sites degrade, never surface: an injected read fault is a
    # store miss (cold rebuild), an injected write fault skips the
    # store-behind (the entry is simply not persisted).
    "store.read": ("store", "warm-start store entry probe (store/store)"),
    "store.write": ("store", "warm-start store entry persist (store/store)"),
    # -- distributed (distributed/comm.py) ----------------------------------
    "comm.send": ("comm", "point-to-point send"),
    "comm.recv": ("comm", "point-to-point receive"),
    "comm.drop": ("comm", "message silently dropped (kind='drop')"),
    "comm.collective": ("comm", "collective entry (bcast/allgather/allreduce)"),
    "comm.barrier": ("comm", "barrier entry"),
    "comm.slow": ("comm", "slow link / slow collective (kind='slow')"),
}


def layer(site: str) -> str:
    """The layer a (possibly unregistered) site name belongs to."""
    if site in SITES:
        return SITES[site][0]
    return site.split(".", 1)[0]

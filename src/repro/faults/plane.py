"""Deterministic, seed-driven fault injection (the §V stress plane).

The paper's error model promises that a failed execution leaves every
GraphBLAS object in a well-defined, still-usable state with the error
retrievable via ``GrB_error``.  Nothing exercises that promise unless
something *provokes* execution failures at the places real systems
fail, so this module provides a process-wide :class:`FaultPlane` with
**named injection sites** threaded through the three fallible layers:

========================  ====================================================
site                      where it fires
========================  ====================================================
``kernel.mxm`` / ``mxv``  SpGEMM / SpMV kernel entry (`internals/mxm.py`)
/ ``vxm``
``kernel.build``          tuple-assembly kernels (`internals/build.py`)
``kernel.apply`` /        §VIII map / filter kernels and the fused stage
``kernel.select`` /       pipelines (`internals/applyselect.py`)
``kernel.pipeline``
``kernel.ewise``          merge/intersect kernels (`internals/ewise.py`)
``kernel.reduce``         monoid reductions (`internals/reduce.py`)
``kernel.extract`` /      §VI sub-container kernels
``kernel.assign``
``txn.commit``            the transactional commit gate (`engine/txn.py`) —
                          after compute, before the result is published
``scheduler.worker``      engine pool worker about to run a node
                          (`engine/scheduler.py`) — a simulated node failure
``scheduler.slow``        same place, ``kind="slow"`` — a straggling worker
``parallel.worker``       a row-block worker of `internals/parallel.py`
``comm.send`` /           the simulated-MPI layer (`distributed/comm.py`)
``comm.recv`` /
``comm.collective``
``comm.drop``             ``kind="drop"`` — the message silently vanishes
``comm.slow``             ``kind="slow"`` — a slow link / slow collective
========================  ====================================================

Determinism: every injection decision is a pure function of
``(plane seed, site name, per-site visit counter, spec identity)`` via a
keyed hash — re-running the same serial program under the same schedule
injects the same faults, which is what lets the chaos harness shrink
failures and the CI chaos job pin a seed matrix.

Transient vs persistent: an injected error carries ``transient=True``
when its spec says so, and the resilience machinery
(:mod:`repro.faults.retry`, the scheduler, the communicator) retries
transient failures with exponential backoff while letting persistent
ones surface through the normal §V deferral machinery.  ``max_hits``
bounds how often a spec fires, so "fails once, then recovers" schedules
are expressible.

Armed-only gating: when ``armed_only`` is set (the default for the
whole-suite chaos mode), error faults fire only *inside* a resilience
envelope — a retry loop, a degradable parallel batch, a guarded
communicator call — never at bare kernel invocations that have no
recovery machinery above them.  That is exactly the claim under test:
every armed site is survivable.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.errors import (
    ExecutionError,
    InsufficientSpaceError,
    OutOfMemoryError,
    PanicError,
)
from ..engine.stats import STATS

__all__ = [
    "TRANSIENT_CLASSES",
    "FaultSpec",
    "FaultPlane",
    "PLANE",
    "SimulatedCrash",
    "is_transient",
    "maybe_inject",
    "should_drop",
    "armed",
    "suspended",
    "enable_chaos",
    "configure_from_env",
]


class SimulatedCrash(BaseException):
    """A crash-kill fault: the process "dies" at this site.

    Deliberately a :class:`BaseException` so that no resilience envelope
    — retry loops, deoptimized fallbacks, per-entry ``except Exception``
    recovery in the serving layer — can absorb it.  It propagates to the
    recovery harness the way SIGKILL propagates to an init system: the
    only valid response is to discard the in-memory state and
    ``GraphService.restore()`` from the checkpoint + journal.
    """

    def __init__(self, site: str = "", message: str = ""):
        super().__init__(message or f"simulated crash-kill at {site!r}")
        self.site = site

#: Error classes the resilience machinery treats as *transient* by
#: default — plausibly induced by resource pressure that may clear on a
#: retry.  An explicit ``exc.transient`` attribute overrides membership
#: in either direction (injected faults always set it).
TRANSIENT_CLASSES = (OutOfMemoryError, InsufficientSpaceError)

#: Errors a fault spec may raise, by name (CLI / env configuration).
ERROR_CLASSES: Mapping[str, type[ExecutionError]] = {
    "OutOfMemoryError": OutOfMemoryError,
    "InsufficientSpaceError": InsufficientSpaceError,
    "PanicError": PanicError,
}


def is_transient(exc: BaseException) -> bool:
    """May a bounded retry plausibly recover from *exc*?"""
    explicit = getattr(exc, "transient", None)
    if explicit is not None:
        return bool(explicit)
    return isinstance(exc, TRANSIENT_CLASSES)


@dataclass
class FaultSpec:
    """One fault schedule entry: *where*, *how often*, *what happens*."""

    site: str                      # fnmatch pattern over site names
    rate: float = 1.0              # injection probability per visit
    error: type[ExecutionError] = OutOfMemoryError   # for kind="error"
    kind: str = "error"            # "error" | "slow" | "drop" | "crash"
    transient: bool = False        # retryable (recovers on re-execution)?
    max_hits: int | None = None    # stop firing after this many injections
    delay: float = 0.002           # sleep duration for kind="slow"
    where: dict = field(default_factory=dict)   # fire() kwargs that must match
    skip: int = 0                  # let this many matching visits pass first
    hits: int = 0                  # injections so far (owned by the plane)

    def __post_init__(self) -> None:
        if self.kind not in ("error", "slow", "drop", "crash"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")


# -- armed scopes --------------------------------------------------------------

_tls = threading.local()


class armed:
    """Marks the current thread as inside a resilience envelope."""

    def __enter__(self) -> "armed":
        _tls.depth = getattr(_tls, "depth", 0) + 1
        return self

    def __exit__(self, *exc: object) -> bool:
        _tls.depth -= 1
        return False


def _is_armed() -> bool:
    return getattr(_tls, "depth", 0) > 0


class FaultPlane:
    """Process-wide fault injector.  Inactive (and near-free) by default."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._specs: list[FaultSpec] = []
        self._seed = 0
        self._visits: dict[str, int] = {}
        self.injected: dict[str, int] = {}   # site -> injection count
        self.by_domain: dict[str, int] = {}  # fault domain -> injections
        self.dropped = 0
        self.active = False
        self.armed_only = False

    # -- configuration -------------------------------------------------------

    def configure(
        self,
        seed: int,
        specs: Iterable[FaultSpec],
        *,
        armed_only: bool = False,
    ) -> None:
        """Install a fault schedule and activate the plane."""
        with self._lock:
            self._seed = int(seed)
            self._specs = list(specs)
            for spec in self._specs:
                spec.hits = 0
            self._visits.clear()
            self.injected.clear()
            self.by_domain.clear()
            self.dropped = 0
            self.armed_only = armed_only
            self.active = True

    def disable(self) -> None:
        with self._lock:
            self.active = False
            self._specs = []

    def snapshot(self) -> dict:
        """Point-in-time copy of the injection counters."""
        with self._lock:
            return {
                "active": self.active,
                "seed": self._seed,
                "injected": dict(self.injected),
                "injected_total": sum(self.injected.values()),
                "by_domain": dict(self.by_domain),
                "dropped": self.dropped,
            }

    def format(self) -> str:
        """Human-readable dump (used by ``repro --chaos``)."""
        snap = self.snapshot()
        lines = [f"fault plane: seed={snap['seed']} "
                 f"active={snap['active']} "
                 f"injected={snap['injected_total']} "
                 f"dropped={snap['dropped']}"]
        for site in sorted(snap["injected"]):
            lines.append(f"  {site:<20} {snap['injected'][site]}")
        return "\n".join(lines)

    # -- the injection decision ----------------------------------------------

    def _decide(self, spec: FaultSpec, site: str, visit: int) -> bool:
        if spec.rate >= 1.0:
            return True
        if spec.rate <= 0.0:
            return False
        # Keyed hash, not random.Random: hash randomization must not make
        # two identical runs diverge.
        key = f"{self._seed}:{site}:{visit}:{spec.site}:{spec.kind}"
        h = hashlib.blake2b(key.encode(), digest_size=8).digest()
        draw = int.from_bytes(h, "big") / 2**64
        return draw < spec.rate

    def fire(self, site: str, **ctx: Any) -> str | None:
        """Visit *site*; maybe inject.  Returns ``"drop"`` when a drop
        fault fired, ``None`` otherwise; error faults raise."""
        if not self.active:
            return None
        todo: FaultSpec | None = None
        with self._lock:
            if not self.active:
                return None
            visit = self._visits.get(site, 0)
            self._visits[site] = visit + 1
            for spec in self._specs:
                if not fnmatch.fnmatchcase(site, spec.site):
                    continue
                if spec.where and any(
                    ctx.get(k) != v for k, v in spec.where.items()
                ):
                    continue
                if spec.max_hits is not None and spec.hits >= spec.max_hits:
                    continue
                if (
                    spec.kind == "error"
                    and self.armed_only
                    and not _is_armed()
                ):
                    continue
                if not self._decide(spec, site, visit):
                    continue
                if spec.skip > 0:
                    # Kill-at-every-boundary harness: let the first
                    # ``skip`` matching visits pass, then fire.  Each
                    # harness iteration bumps ``skip`` by one to walk the
                    # crash point across every boundary of the workload.
                    spec.skip -= 1
                    continue
                spec.hits += 1
                self.injected[site] = self.injected.get(site, 0) + 1
                domain = ctx.get("domain")
                if domain is not None:
                    # Per-tenant chaos accounting: sites tagged with the
                    # owning context's fault domain roll up here, so a
                    # serving test can prove where faults landed.
                    self.by_domain[domain] = self.by_domain.get(domain, 0) + 1
                if spec.kind == "drop":
                    self.dropped += 1
                todo = spec
                break
        if todo is None:
            return None
        STATS.bump("faults_injected")
        if todo.kind == "crash":
            raise SimulatedCrash(site)
        if todo.kind == "slow":
            time.sleep(todo.delay)
            return None
        if todo.kind == "drop":
            return "drop"
        detail = "".join(f" {k}={v!r}" for k, v in sorted(ctx.items()))
        exc = todo.error(
            f"injected {'transient' if todo.transient else 'persistent'} "
            f"fault at {site}{detail}"
        )
        exc.transient = todo.transient
        exc.injected = True
        raise exc


#: The process-wide fault plane.
PLANE = FaultPlane()


def maybe_inject(site: str, **ctx: Any) -> None:
    """Visit *site* on the active plane (no-op when the plane is off).

    Raises the scheduled :class:`ExecutionError` when an error fault
    fires; sleeps for slow faults; drop faults are ignored here (use
    :func:`should_drop` at sites with drop semantics).
    """
    if PLANE.active:
        PLANE.fire(site, **ctx)


def should_drop(site: str, **ctx: Any) -> bool:
    """Visit *site*; True when a drop fault consumed the action."""
    if not PLANE.active:
        return False
    return PLANE.fire(site, **ctx) == "drop"


class suspended:
    """Context manager: temporarily deactivate the plane (harness use —
    e.g. building reference operands must not fault)."""

    def __enter__(self) -> "suspended":
        self._was = PLANE.active
        PLANE.active = False
        return self

    def __exit__(self, *exc: object) -> bool:
        PLANE.active = self._was
        return False


# -- canned configurations -----------------------------------------------------


def enable_chaos(
    seed: int,
    *,
    rate: float = 0.02,
    sites: str = "kernel.*",
    error: type[ExecutionError] = OutOfMemoryError,
) -> None:
    """Low-probability *transient* faults at armed sites — the canned
    schedule behind ``repro --chaos`` and the CI chaos job.  Every
    injected fault is retryable, so a correct resilience layer recovers
    every one of them and programs still produce exact results."""
    PLANE.configure(
        seed,
        [FaultSpec(site=sites, rate=rate, error=error, transient=True)],
        armed_only=True,
    )


def configure_from_env(environ: Mapping[str, str] | None = None) -> bool:
    """Activate chaos mode from ``REPRO_CHAOS_*`` environment variables.

    ``REPRO_CHAOS_SEED`` (required to activate), ``REPRO_CHAOS_RATE``
    (default 0.02), ``REPRO_CHAOS_SITES`` (default ``kernel.*``),
    ``REPRO_CHAOS_ERROR`` (default ``OutOfMemoryError``).  Returns True
    when the plane was activated.
    """
    env = os.environ if environ is None else environ
    seed = env.get("REPRO_CHAOS_SEED")
    if seed is None:
        return False
    enable_chaos(
        int(seed),
        rate=float(env.get("REPRO_CHAOS_RATE", "0.02")),
        sites=env.get("REPRO_CHAOS_SITES", "kernel.*"),
        error=ERROR_CLASSES[env.get("REPRO_CHAOS_ERROR", "OutOfMemoryError")],
    )
    return True

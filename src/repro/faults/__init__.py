"""Fault-injection plane + resilience helpers (§V stress machinery).

See :mod:`repro.faults.plane` for the injection model and
:mod:`repro.faults.sites` for the canonical site registry.
"""

from .plane import (
    ERROR_CLASSES,
    PLANE,
    TRANSIENT_CLASSES,
    FaultPlane,
    FaultSpec,
    armed,
    configure_from_env,
    enable_chaos,
    is_transient,
    maybe_inject,
    should_drop,
    suspended,
)
from .retry import guard, with_retry
from .sites import SITES

__all__ = [
    "ERROR_CLASSES",
    "PLANE",
    "SITES",
    "TRANSIENT_CLASSES",
    "FaultPlane",
    "FaultSpec",
    "armed",
    "configure_from_env",
    "enable_chaos",
    "guard",
    "is_transient",
    "maybe_inject",
    "should_drop",
    "suspended",
    "with_retry",
]

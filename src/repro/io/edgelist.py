"""Plain edge-list I/O (the SNAP / Graph500 text interchange format).

Lines are ``src dst [weight]``; ``#``/``%`` lines are comments.  Vertex
ids may be arbitrary non-negative integers; the reader compacts or
preserves them per ``relabel``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core import types as T
from ..core.context import Context
from ..core.errors import InvalidObjectError
from ..core.matrix import Matrix
from ..core.types import Type

__all__ = ["read_edgelist", "write_edgelist"]


def read_edgelist(
    path: str | Path,
    t: Type = T.FP64,
    *,
    relabel: bool = False,
    make_undirected: bool = False,
    default_weight: float = 1.0,
    ctx: Context | None = None,
) -> tuple[Matrix, np.ndarray | None]:
    """Read ``src dst [w]`` lines into a matrix.

    Returns ``(matrix, vertex_ids)`` where ``vertex_ids`` maps compacted
    index → original id when ``relabel=True`` (else ``None`` and the
    matrix is sized by the max id + 1).
    """
    srcs, dsts, ws = [], [], []
    with open(path, "r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise InvalidObjectError(
                    f"malformed edge at line {lineno}: {line!r}"
                )
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            ws.append(float(parts[2]) if len(parts) > 2 else default_weight)
    rows = np.asarray(srcs, dtype=np.int64)
    cols = np.asarray(dsts, dtype=np.int64)
    vals = np.asarray(ws)

    ids: np.ndarray | None = None
    if relabel:
        ids = np.unique(np.concatenate([rows, cols]))
        rows = np.searchsorted(ids, rows)
        cols = np.searchsorted(ids, cols)
        n = len(ids)
    else:
        n = int(max(rows.max(initial=-1), cols.max(initial=-1))) + 1 \
            if len(rows) else 0

    if make_undirected:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])

    from ..core.binaryop import MAX

    m = Matrix.new(t, n, n, ctx)
    m.build(rows, cols, vals, MAX[t] if t in MAX else None)
    m.wait()
    return m, ids


def write_edgelist(path: str | Path, m: Matrix, *,
                   weights: bool = True) -> None:
    """Write the stored entries as ``src dst [w]`` lines."""
    rows, cols, vals = m.extract_tuples()
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"# {m.nrows} {m.ncols} {len(rows)}\n")
        if weights:
            for i, j, v in zip(rows, cols, vals):
                fh.write(f"{i} {j} {v}\n")
        else:
            for i, j in zip(rows, cols):
                fh.write(f"{i} {j}\n")

"""File I/O for GraphBLAS containers (Matrix Market + edge lists)."""

from .matrixmarket import mmread, mmread_string, mmwrite, mmwrite_string
from .edgelist import read_edgelist, write_edgelist
from .grbfiles import load, save

__all__ = [
    "mmread",
    "mmread_string",
    "mmwrite",
    "mmwrite_string",
    "read_edgelist",
    "write_edgelist",
    "save",
    "load",
]

"""Binary container files: the opaque serialization (§VII-B) on disk.

``save`` writes any Matrix/Vector as its serialized blob (checksummed,
versioned — see :mod:`repro.formats.serialize`); ``load`` dispatches on
the embedded kind byte.  The recommended extension is ``.grb``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..core.context import Context
from ..core.errors import InvalidObjectError
from ..core.matrix import Matrix
from ..core.vector import Vector
from ..formats.serialize import (
    _KIND_MATRIX,
    _KIND_VECTOR,
    _MAGIC,
    _PREFIX,
    matrix_deserialize,
    matrix_serialize,
    vector_deserialize,
    vector_serialize,
)

__all__ = ["save", "load"]


def save(path: str | Path, obj: Union[Matrix, Vector]) -> int:
    """Write a container's opaque blob to ``path``; returns bytes written."""
    if isinstance(obj, Matrix):
        blob = matrix_serialize(obj)
    elif isinstance(obj, Vector):
        blob = vector_serialize(obj)
    else:
        raise InvalidObjectError(
            f"cannot save object of type {type(obj).__name__}"
        )
    with open(path, "wb") as fh:
        fh.write(blob)
    return len(blob)


def load(path: str | Path, ctx: Context | None = None) -> Union[Matrix, Vector]:
    """Read a ``.grb`` file back; the kind byte picks Matrix or Vector."""
    with open(path, "rb") as fh:
        blob = fh.read()
    if len(blob) < _PREFIX.size:
        raise InvalidObjectError(f"{path}: truncated GraphBLAS file")
    magic, _version, kind, *_ = _PREFIX.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise InvalidObjectError(f"{path}: not a serialized GraphBLAS object")
    if kind == _KIND_MATRIX:
        return matrix_deserialize(blob, ctx)
    if kind == _KIND_VECTOR:
        return vector_deserialize(blob, ctx)
    raise InvalidObjectError(f"{path}: unknown object kind {kind}")

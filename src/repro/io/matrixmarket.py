"""Matrix Market (MM) reader/writer for GraphBLAS matrices.

The LAGraph ecosystem's interchange format.  Supports the coordinate
format with ``real``, ``integer``, and ``pattern`` fields and the
``general``, ``symmetric``, and ``skew-symmetric`` symmetry classes —
the combinations that occur in the SuiteSparse collection graphs the
GraphBLAS papers evaluate on.

MM is 1-indexed; GraphBLAS is 0-indexed — the translation happens here.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import TextIO

import numpy as np

from ..core import types as T
from ..core.context import Context
from ..core.errors import InvalidObjectError, InvalidValueError
from ..core.matrix import Matrix
from ..core.types import Type

__all__ = ["mmread", "mmwrite", "mmread_string", "mmwrite_string"]

_FIELD_TYPES = {"real": T.FP64, "integer": T.INT64, "pattern": T.BOOL}
_SYMMETRIES = ("general", "symmetric", "skew-symmetric")


def mmread(path: str | Path, t: Type | None = None,
           ctx: Context | None = None) -> Matrix:
    """Read a Matrix Market file into a new matrix.

    ``t`` overrides the domain implied by the MM field (with the usual
    implicit cast).
    """
    with open(path, "r", encoding="ascii") as fh:
        return _read(fh, t, ctx)


def mmread_string(text: str, t: Type | None = None,
                  ctx: Context | None = None) -> Matrix:
    """Read Matrix Market content from a string (testing convenience)."""
    return _read(_io.StringIO(text), t, ctx)


def _read(fh: TextIO, t: Type | None, ctx: Context | None) -> Matrix:
    header = fh.readline().strip().split()
    if len(header) != 5 or header[0] != "%%MatrixMarket":
        raise InvalidObjectError("not a MatrixMarket file (bad banner)")
    _, obj, fmt, field, symmetry = (h.lower() for h in header)
    if obj != "matrix" or fmt != "coordinate":
        raise InvalidValueError(
            f"only coordinate matrices are supported, got {obj}/{fmt}"
        )
    if field not in _FIELD_TYPES:
        raise InvalidValueError(f"unsupported MM field {field!r}")
    if symmetry not in _SYMMETRIES:
        raise InvalidValueError(f"unsupported MM symmetry {symmetry!r}")

    line = fh.readline()
    while line.startswith("%"):
        line = fh.readline()
    try:
        nrows, ncols, nnz = (int(x) for x in line.split())
    except ValueError:
        raise InvalidObjectError("malformed MM size line") from None

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    pattern = field == "pattern"
    vals = np.ones(nnz) if pattern else np.empty(nnz)
    for k in range(nnz):
        parts = fh.readline().split()
        if len(parts) < (2 if pattern else 3):
            raise InvalidObjectError(f"malformed MM entry line {k + 1}")
        rows[k] = int(parts[0]) - 1
        cols[k] = int(parts[1]) - 1
        if not pattern:
            vals[k] = float(parts[2])

    if symmetry != "general":
        off = rows != cols
        extra_r, extra_c = cols[off], rows[off]
        extra_v = vals[off] if symmetry == "symmetric" else -vals[off]
        rows = np.concatenate([rows, extra_r])
        cols = np.concatenate([cols, extra_c])
        vals = np.concatenate([vals, extra_v])

    out_t = t if t is not None else _FIELD_TYPES[field]
    m = Matrix.new(out_t, nrows, ncols, ctx)
    m.build(rows, cols, vals, None)
    m.wait()
    return m


def mmwrite(path: str | Path, m: Matrix, *, field: str | None = None,
            comment: str = "") -> None:
    """Write a matrix as a general-coordinate Matrix Market file."""
    with open(path, "w", encoding="ascii") as fh:
        _write(fh, m, field, comment)


def mmwrite_string(m: Matrix, *, field: str | None = None,
                   comment: str = "") -> str:
    buf = _io.StringIO()
    _write(buf, m, field, comment)
    return buf.getvalue()


def _infer_field(t: Type) -> str:
    if t.is_bool:
        return "pattern"
    if t.is_integer:
        return "integer"
    if t.is_float:
        return "real"
    raise InvalidValueError(f"cannot write domain {t.name} as MatrixMarket")


def _write(fh: TextIO, m: Matrix, field: str | None, comment: str) -> None:
    field = field or _infer_field(m.type)
    if field not in _FIELD_TYPES:
        raise InvalidValueError(f"unsupported MM field {field!r}")
    fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
    for line in comment.splitlines():
        fh.write(f"% {line}\n")
    rows, cols, vals = m.extract_tuples()
    fh.write(f"{m.nrows} {m.ncols} {len(rows)}\n")
    if field == "pattern":
        for i, j in zip(rows, cols):
            fh.write(f"{i + 1} {j + 1}\n")
    elif field == "integer":
        for i, j, v in zip(rows, cols, vals):
            fh.write(f"{i + 1} {j + 1} {int(v)}\n")
    else:
        for i, j, v in zip(rows, cols, vals):
            fh.write(f"{i + 1} {j + 1} {float(v):.17g}\n")
